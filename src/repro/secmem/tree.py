"""Integrity trees: hash tree (HT), split-counter tree (SCT), SGX tree (SIT).

All three designs share the Section IV-C structure: node blocks arranged in
levels over the encryption-counter blocks, with the level above the last
off-chip level held on-chip (trusted roots, free to access).

* :class:`HashTree` — each node block stores the hashes of its children
  (8-ary Bonsai Merkle Tree [12]).  No counters, no overflow.
* :class:`CounterTree` — each node block holds a major counter, per-child
  minor counters and an embedded hash ``H(parent_minor ‖ major ‖ minors)``.
  With 7-bit minors this is the SCT of VAULT [14]; with 56-bit monolithic
  counters (no major) it is SGX's SIT [67].  Minor-counter overflow resets
  the whole subtree and re-hashes it — the long-latency event MetaLeak-C
  observes.

The trees are *functional*: hashes are really computed (keyed BLAKE2b), so
spoof/splice/replay of any memory-resident metadata is detected, and the
on-chip root counters/hashes are the anchors of trust.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.config import SecureProcessorConfig, TreeKind
from repro.core import Component
from repro.crypto.prf import node_hash
from repro.secmem.layout import MetadataLayout


class TreeIntegrityError(Exception):
    """A tree node failed verification against its parent / root."""


@dataclass(frozen=True)
class TreeOverflow:
    """A minor-counter overflow at one node (Section IV-C).

    ``node_blocks_affected`` counts the node and every materialised
    descendant node block that was reset and re-hashed;
    ``counter_blocks`` is the range of counter-block indices whose stored
    hash must be refreshed (their parent minors were reset).
    """

    level: int
    index: int
    node_blocks_affected: int
    counter_blocks: range


@dataclass
class TreeUpdate:
    """Effect of absorbing one counter-block update into the tree."""

    levels_touched: int = 0
    overflows: list[TreeOverflow] = field(default_factory=list)

    @property
    def overflowed(self) -> bool:
        return bool(self.overflows)


DefaultLeafImage = Callable[[int], tuple[int, ...]]


class IntegrityTree(Component, abc.ABC):
    """Common interface consumed by the memory encryption engine."""

    def __init__(self, config: SecureProcessorConfig, layout: MetadataLayout, key: bytes) -> None:
        self.config = config
        self.layout = layout
        self.key = bytes(key)
        self.updates = 0
        # Instrument slots are created detached; the MEE adopts each tree
        # into the component graph so late-built (per-domain) trees inherit
        # whatever is already attached.  Event cycles come from the
        # tracer's bound clock.
        self.init_component("tree")

    def _trace(self, kind: str, *, level: int | None = None,
               index: int | None = None, value: float | None = None) -> None:
        if self.tracer is not None:
            self.tracer.emit("tree", kind, addr=index, level=level, value=value)

    @abc.abstractmethod
    def on_counter_block_update(
        self, cb_index: int, cb_image: tuple[int, ...]
    ) -> TreeUpdate:
        """Absorb one update of counter block ``cb_index`` into the tree."""

    @abc.abstractmethod
    def verify_counter_block(self, cb_index: int, cb_image: tuple[int, ...]) -> None:
        """Check a counter block loaded from memory against the tree."""

    @abc.abstractmethod
    def verify_node(self, level: int, index: int) -> None:
        """Check a node block loaded from memory against its parent/root."""

    def path_nodes(self, cb_index: int) -> list[tuple[int, int]]:
        """(level, index) of every off-chip node on a counter block's path.

        Delegates to the layout's memoised :meth:`MetadataLayout.path_of`
        table so tree walks and batch precomputation share one cache.
        """
        return [(level, index) for level, index, _ in self.layout.path_of(cb_index)]

    @abc.abstractmethod
    def tamper_node(self, level: int, index: int, slot: int, value: int) -> int:
        """Corrupt one stored word of a memory-resident node block.

        Design-agnostic entry point for fault injection: a counter tree
        corrupts the ``slot``-th minor counter, a hash tree the ``slot``-th
        stored child hash.  Neither re-hashes anything — this is an
        off-chip bit flip.  Returns the previous value for undo.
        """


# ----------------------------------------------------------------------
# Counter tree (SCT and SIT)
# ----------------------------------------------------------------------


@dataclass
class _CounterNode:
    major: int
    minors: list[int]
    hash: int


class CounterTree(IntegrityTree):
    """Split-counter (SCT) or monolithic-counter (SIT) integrity tree."""

    def __init__(self, config: SecureProcessorConfig, layout: MetadataLayout, key: bytes) -> None:
        super().__init__(config, layout, key)
        tree = config.tree
        if tree.kind is TreeKind.SPLIT_COUNTER:
            self.has_major = True
            self.minor_max = tree.minor_max
        elif tree.kind is TreeKind.SGX:
            self.has_major = False
            self.minor_max = (1 << tree.monolithic_bits) - 1
        else:
            raise ValueError(f"CounterTree cannot implement {tree.kind}")
        self._nodes: dict[tuple[int, int], _CounterNode] = {}
        # On-chip trusted counters, one per top-level node block; unbounded
        # integers (roots never overflow — they are registers, not memory).
        self._root_counters: dict[int, int] = {}
        self.overflow_count = 0

    # -- state access ---------------------------------------------------

    def _node(self, level: int, index: int) -> _CounterNode:
        key = (level, index)
        state = self._nodes.get(key)
        if state is None:
            arity = self.layout.levels[level].arity
            state = _CounterNode(major=0, minors=[0] * arity, hash=0)
            state.hash = self._hash_node(level, index, state)
            self._nodes[key] = state
        return state

    def node_image(self, level: int, index: int) -> tuple[int, ...]:
        """Memory-resident content of a node block (for tests/tampering)."""
        state = self._node(level, index)
        return (state.major, *state.minors, state.hash)

    def parent_value(self, level: int, index: int) -> int:
        """The counter in this node's parent that tracks this node."""
        parent = self.layout.parent_of(level, index)
        if parent is None:
            return self._root_counters.get(index, 0)
        parent_level, parent_index = parent
        slot = self.layout.child_slot(level, index)
        return self._node(parent_level, parent_index).minors[slot]

    def leaf_parent_value(self, cb_index: int) -> int:
        """The L0 minor counter tracking counter block ``cb_index``."""
        arity = self.layout.levels[0].arity
        node = self._node(0, cb_index // arity)
        return node.minors[cb_index % arity]

    def root_counter(self, index: int) -> int:
        return self._root_counters.get(index, 0)

    def _hash_node(self, level: int, index: int, state: _CounterNode) -> int:
        if not self.config.functional_crypto:
            return 0
        return node_hash(
            self.key,
            "ctnode",
            level,
            index,
            self.parent_value(level, index),
            state.major,
            *state.minors,
        )

    # -- update path ------------------------------------------------------

    def on_counter_block_update(
        self, cb_index: int, cb_image: tuple[int, ...]
    ) -> TreeUpdate:
        """Bump every minor on the path from the leaf to the on-chip root.

        The parent minor of each path node is incremented; overflow of any
        7-bit minor triggers the Section IV-C subtree reset + re-hash.
        Hashes of path nodes are recomputed last, once all counters hold
        their final values.
        """
        self.updates += 1
        self._trace("update", level=len(self.layout.levels), index=cb_index)
        update = TreeUpdate()
        path = self.path_nodes(cb_index)
        child_slot = cb_index % self.layout.levels[0].arity
        for level, index in path:
            node = self._node(level, index)
            if node.minors[child_slot] < self.minor_max:
                node.minors[child_slot] += 1
            else:
                update.overflows.append(self._handle_overflow(level, index, child_slot))
            child_slot = self.layout.child_slot(level, index)
            update.levels_touched += 1
        top_level, top_index = path[-1]
        self._root_counters[top_index] = self._root_counters.get(top_index, 0) + 1
        # Re-hash bottom-up now that every counter on the path is final.
        for level, index in path:
            node = self._node(level, index)
            node.hash = self._hash_node(level, index, node)
        return update

    def _handle_overflow(self, level: int, index: int, trigger_slot: int) -> TreeOverflow:
        """Reset this node and its subtree (majors++, minors=0), re-hash."""
        self.overflow_count += 1
        self._trace("overflow", level=level, index=index)
        affected = 0
        for desc_level, desc_index in self._descendant_nodes(level, index):
            node = self._node(desc_level, desc_index)
            if self.has_major:
                node.major += 1
            node.minors = [0] * len(node.minors)
            affected += 1
        node = self._node(level, index)
        if self.has_major:
            node.major += 1
        node.minors = [0] * len(node.minors)
        node.minors[trigger_slot] = 1
        affected += 1
        # Re-hash the materialised subtree (path nodes above get re-hashed
        # by the caller after their counters settle).
        for desc_level, desc_index in self._descendant_nodes(level, index):
            desc = self._node(desc_level, desc_index)
            desc.hash = self._hash_node(desc_level, desc_index, desc)
        counter_blocks = self.layout.counter_blocks_under_node(level, index)
        return TreeOverflow(
            level=level,
            index=index,
            node_blocks_affected=affected,
            counter_blocks=counter_blocks,
        )

    # -- lazy-update entry points (Section V's lazy scheme) ---------------

    def bump_leaf(self, cb_index: int) -> TreeUpdate:
        """Absorb one counter-block write-back: bump its L0 minor.

        Called when a dirty encryption-counter block is evicted from the
        metadata cache (the lazy scheme's first propagation step).
        """
        self.updates += 1
        self._trace("bump_leaf", level=0, index=cb_index)
        update = TreeUpdate(levels_touched=1)
        arity = self.layout.levels[0].arity
        index = cb_index // arity
        slot = cb_index % arity
        node = self._node(0, index)
        if node.minors[slot] < self.minor_max:
            node.minors[slot] += 1
        else:
            update.overflows.append(self._handle_overflow(0, index, slot))
        node = self._node(0, index)
        node.hash = self._hash_node(0, index, node)
        return update

    def bump_node(self, level: int, index: int) -> TreeUpdate:
        """Absorb one node-block write-back: bump its parent counter.

        Called when a dirty level-``level`` node block is evicted from the
        metadata cache.  Re-hashes both the written-back node (its parent
        counter — part of its hash — changed) and the parent node.
        """
        self.updates += 1
        self._trace("bump_node", level=level, index=index)
        update = TreeUpdate(levels_touched=1)
        parent = self.layout.parent_of(level, index)
        if parent is None:
            self._root_counters[index] = self._root_counters.get(index, 0) + 1
        else:
            parent_level, parent_index = parent
            slot = self.layout.child_slot(level, index)
            parent_node = self._node(parent_level, parent_index)
            if parent_node.minors[slot] < self.minor_max:
                parent_node.minors[slot] += 1
            else:
                update.overflows.append(
                    self._handle_overflow(parent_level, parent_index, slot)
                )
            parent_node = self._node(parent_level, parent_index)
            parent_node.hash = self._hash_node(parent_level, parent_index, parent_node)
        node = self._node(level, index)
        node.hash = self._hash_node(level, index, node)
        return update

    def _descendant_nodes(self, level: int, index: int) -> Iterable[tuple[int, int]]:
        """Materialised node blocks strictly below (level, index)."""
        if level == 0:
            return
        ranges: dict[int, range] = {}
        span = range(index, index + 1)
        for child_level in range(level - 1, -1, -1):
            arity = self.layout.levels[child_level + 1].arity
            span = range(span.start * arity, span.stop * arity)
            ranges[child_level] = span
        for (node_level, node_index) in list(self._nodes.keys()):
            span = ranges.get(node_level)
            if span is not None and span.start <= node_index < span.stop:
                yield node_level, node_index

    # -- verification ------------------------------------------------------

    def verify_node(self, level: int, index: int) -> None:
        node = self._node(level, index)
        expected = self._hash_node(level, index, node)
        if node.hash != expected:
            raise TreeIntegrityError(
                f"tree node L{level}[{index}] failed verification"
            )

    def verify_counter_block(self, cb_index: int, cb_image: tuple[int, ...]) -> None:
        """Counter blocks are authenticated by the engine's per-block hash
        bound to :meth:`leaf_parent_value`; the tree itself only needs the
        leaf minor, so this is a structural no-op kept for interface parity.
        """

    # -- tamper API (tests) -------------------------------------------------

    def tamper_minor(self, level: int, index: int, slot: int, value: int) -> None:
        """Corrupt a stored minor counter without re-hashing (spoofing)."""
        self._node(level, index).minors[slot] = value

    def tamper_node(self, level: int, index: int, slot: int, value: int) -> int:
        node = self._node(level, index)
        old = node.minors[slot]
        node.minors[slot] = value
        return old

    def tamper_replay(self, level: int, index: int, snapshot: tuple[int, ...]) -> None:
        """Overwrite a node block with an old snapshot (replay attack)."""
        major, *rest = snapshot
        minors, stored_hash = list(rest[:-1]), rest[-1]
        node = self._node(level, index)
        node.major, node.minors, node.hash = major, minors, stored_hash


# ----------------------------------------------------------------------
# Hash tree (Bonsai Merkle Tree)
# ----------------------------------------------------------------------


class HashTree(IntegrityTree):
    """8-ary hash tree over counter blocks (HT, [12])."""

    def __init__(
        self,
        config: SecureProcessorConfig,
        layout: MetadataLayout,
        key: bytes,
        default_leaf_image: DefaultLeafImage,
    ) -> None:
        super().__init__(config, layout, key)
        if config.tree.kind is not TreeKind.HASH:
            raise ValueError("HashTree requires TreeKind.HASH")
        self._current_leaf_image = default_leaf_image
        # Nodes materialise lazily against the *pristine* (all-zero) counter
        # image — the state the whole tree logically had at boot.  Using the
        # current image here would bless content that changed behind the
        # tree's back.  The tree is constructed before any write, so the
        # image shape captured now is the pristine one.
        self._initial_image = tuple(0 for _ in default_leaf_image(0))
        # (level, index) -> list of child hashes
        self._nodes: dict[tuple[int, int], list[int]] = {}
        self._root_hashes: dict[int, int] = {}

    # -- hashing -----------------------------------------------------------

    def _leaf_hash(self, cb_index: int, cb_image: tuple[int, ...]) -> int:
        if not self.config.functional_crypto:
            return 0
        return node_hash(self.key, "htleaf", cb_index, *cb_image)

    def _node_content_hash(self, level: int, index: int) -> int:
        if not self.config.functional_crypto:
            return 0
        return node_hash(self.key, "htnode", level, index, *self._node(level, index))

    def _node(self, level: int, index: int) -> list[int]:
        key = (level, index)
        content = self._nodes.get(key)
        if content is None:
            arity = self.layout.levels[level].arity
            if level == 0:
                children = self.layout.children_of(0, index)
                content = [
                    self._leaf_hash(cb, self._initial_image) for cb in children
                ]
                content += [0] * (arity - len(content))
            else:
                children = self.layout.children_of(level, index)
                content = [
                    self._node_content_hash(level - 1, child) for child in children
                ]
                content += [0] * (arity - len(content))
            self._nodes[key] = content
        return content

    def node_image(self, level: int, index: int) -> tuple[int, ...]:
        return tuple(self._node(level, index))

    def _root_hash(self, index: int) -> int:
        if index not in self._root_hashes:
            self._root_hashes[index] = self._node_content_hash(
                len(self.layout.levels) - 1, index
            )
        return self._root_hashes[index]

    # -- update -------------------------------------------------------------

    def on_counter_block_update(
        self, cb_index: int, cb_image: tuple[int, ...]
    ) -> TreeUpdate:
        """Recompute the hash chain from the updated leaf to the root."""
        self.updates += 1
        arity0 = self.layout.levels[0].arity
        node = self._node(0, cb_index // arity0)
        node[cb_index % arity0] = self._leaf_hash(cb_index, cb_image)
        level, index = 0, cb_index // arity0
        levels_touched = 1
        while True:
            parent = self.layout.parent_of(level, index)
            if parent is None:
                self._root_hashes[index] = self._node_content_hash(level, index)
                break
            parent_level, parent_index = parent
            slot = self.layout.child_slot(level, index)
            self._node(parent_level, parent_index)[slot] = self._node_content_hash(
                level, index
            )
            level, index = parent_level, parent_index
            levels_touched += 1
        return TreeUpdate(levels_touched=levels_touched)

    # -- lazy-update entry points ---------------------------------------------

    def bump_leaf(self, cb_index: int) -> TreeUpdate:
        """Refresh the leaf hash when a counter block writes back."""
        self.updates += 1
        arity0 = self.layout.levels[0].arity
        node = self._node(0, cb_index // arity0)
        node[cb_index % arity0] = self._leaf_hash(
            cb_index, self._current_leaf_image(cb_index)
        )
        return TreeUpdate(levels_touched=1)

    def bump_node(self, level: int, index: int) -> TreeUpdate:
        """Refresh the parent's stored hash when a node block writes back."""
        self.updates += 1
        parent = self.layout.parent_of(level, index)
        if parent is None:
            self._root_hashes[index] = self._node_content_hash(level, index)
        else:
            parent_level, parent_index = parent
            slot = self.layout.child_slot(level, index)
            self._node(parent_level, parent_index)[slot] = self._node_content_hash(
                level, index
            )
        return TreeUpdate(levels_touched=1)

    # -- verification --------------------------------------------------------

    def verify_counter_block(self, cb_index: int, cb_image: tuple[int, ...]) -> None:
        arity0 = self.layout.levels[0].arity
        node = self._node(0, cb_index // arity0)
        if node[cb_index % arity0] != self._leaf_hash(cb_index, cb_image):
            raise TreeIntegrityError(
                f"counter block {cb_index} failed hash-tree verification"
            )

    def verify_node(self, level: int, index: int) -> None:
        content_hash = self._node_content_hash(level, index)
        parent = self.layout.parent_of(level, index)
        if parent is None:
            expected = self._root_hash(index)
        else:
            parent_level, parent_index = parent
            slot = self.layout.child_slot(level, index)
            expected = self._node(parent_level, parent_index)[slot]
        if content_hash != expected:
            raise TreeIntegrityError(
                f"hash-tree node L{level}[{index}] failed verification"
            )

    # -- tamper API (tests) ----------------------------------------------------

    def tamper_child_hash(self, level: int, index: int, slot: int, value: int) -> None:
        self._node(level, index)[slot] = value

    def tamper_node(self, level: int, index: int, slot: int, value: int) -> int:
        node = self._node(level, index)
        old = node[slot]
        node[slot] = value
        return old


def build_tree(
    config: SecureProcessorConfig,
    layout: MetadataLayout,
    key: bytes,
    default_leaf_image: DefaultLeafImage,
) -> IntegrityTree:
    """Instantiate the integrity tree named by the configuration."""
    if config.tree.kind is TreeKind.HASH:
        return HashTree(config, layout, key, default_leaf_image)
    return CounterTree(config, layout, key)
