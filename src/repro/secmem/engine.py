"""The Memory Encryption Engine (MEE): Sections IV-V in executable form.

The engine sits between the LLC and the memory controller and implements:

* the **read path** of Figure 5 — on an LLC miss, the data block is fetched
  while the encryption counter is looked up in the metadata cache; a counter
  miss triggers the Algorithm-2 bottom-up tree walk that stops at the first
  cached ancestor (or the on-chip root).  The walk's depth is what creates
  the distinguishable Path-2/3/4 latencies (VUL-2);
* the **write path** — writes are posted to the memory controller and the
  security work happens at service time: counter increment (Algorithm 1,
  with group re-encryption on overflow — VUL-1), encryption, MAC update and
  integrity-tree update (eager or lazy policy).  Tree-counter overflow
  resets and re-hashes the whole subtree while occupying DRAM banks — the
  long-latency burst MetaLeak-C observes;
* **functional protection** — ciphertexts, MACs and tree hashes are real
  (keyed BLAKE2b), so the tamper API lets tests demonstrate that spoofing,
  splicing and replay of data or metadata are detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import (
    BLOCK_SIZE,
    CounterScheme,
    SecureProcessorConfig,
    TreeUpdatePolicy,
)
from repro.core import (
    FAULT_HOOK,
    NULL_TXN,
    TRACER,
    Component,
    Txn,
    adopt,
    attach,
    detach,
)
from repro.crypto.engine import CounterModeEngine
from repro.crypto.mac import MacEngine
from repro.crypto.prf import keyed_prf, node_hash
from repro.mem.block import block_address
from repro.mem.cache import SetAssocCache
from repro.mem.memctrl import MemoryController
from repro.secmem.counters import CounterEvent, EncryptionCounterStore
from repro.secmem.layout import MetadataLayout
from repro.secmem.tree import TreeIntegrityError, build_tree

# Cycles of engine work per block during an overflow re-encryption or
# subtree re-hash burst (read + crypto + write, pipelined).
REENCRYPT_BLOCK_COST = 120
REHASH_BLOCK_COST = 60


class IntegrityViolation(Exception):
    """Off-chip tampering detected (MAC or integrity-tree mismatch)."""


@dataclass
class ReadOutcome:
    """Memory-side result of servicing one LLC-missing read."""

    latency: int
    counter_hit: bool
    tree_levels_missed: int
    plaintext: bytes
    overflow_stall: int = 0
    # Critical-path cycle attribution (``repro.perf``): component -> cycles,
    # summing exactly to ``latency``.  ``shadowed`` holds the cycles of the
    # fetch that lost the max(data, metadata) overlap race — real work, but
    # hidden under the critical path, so excluded from the conserved sum.
    # Both stay ``None`` unless ``read_data(..., breakdown=True)``.
    breakdown: dict[str, int] | None = None
    shadowed: dict[str, int] | None = None


@dataclass
class EngineStats:
    reads: int = 0
    writes_serviced: int = 0
    counter_hits: int = 0
    counter_misses: int = 0
    tree_node_loads: int = 0
    enc_counter_overflows: int = 0
    tree_counter_overflows: int = 0
    reencrypted_blocks: int = 0
    tree_levels_missed_histogram: dict[int, int] = field(default_factory=dict)


class MemoryEncryptionEngine(Component):
    """Counter-mode encryption + integrity verification over one MC."""

    def __init__(self, config: SecureProcessorConfig, memctrl: MemoryController) -> None:
        self.config = config
        self.memctrl = memctrl
        self.layout = MetadataLayout(config)
        self.counters = EncryptionCounterStore(config.counters, self.layout)
        master = keyed_prf(b"metaleak-root", config.seed, out_len=32)
        self._enc_key = keyed_prf(master, "enc", out_len=32)
        self._mac_key = keyed_prf(master, "mac", out_len=32)
        self._tree_key = keyed_prf(master, "tree", out_len=32)
        self.cipher = CounterModeEngine(self._enc_key)
        self.mac = MacEngine(self._mac_key)
        self.tree = build_tree(
            config, self.layout, self._tree_key, self.counters.counter_block_image
        )
        # Section IX-C mitigation: per-domain integrity trees.  Domain 0
        # uses `self.tree`; other domains get their own tree instance and a
        # disjoint node address space (tagged above the physical range), so
        # mutually distrusting processes share no non-root tree node.
        self._domain_trees: dict[int, object] = {0: self.tree}
        self._page_domain: dict[int, int] = {}
        self.meta_cache = SetAssocCache(config.metadata_cache)
        if config.split_metadata_caches:
            tree_cfg = config.tree_cache or config.metadata_cache
            self.tree_cache = SetAssocCache(tree_cfg)
        else:
            self.tree_cache = self.meta_cache
        # Memory images: ciphertext and MACs for blocks ever written.
        self._ciphertext: dict[int, bytes] = {}
        self._macs: dict[int, bytes] = {}
        # Counter-block hash, bound to the leaf tree counter (replay freshness).
        self._cb_hashes: dict[int, int] = {}
        # Plaintext pending in the write queue, consumed at service time.
        self._pending_plain: dict[int, bytes] = {}
        # Memoised pure decomposition of a protected data block address
        # into its metadata coordinates (counter-block address/index, MAC
        # address).  Shared by the read path, the write sink and the
        # batch tables; see the functional/timing split in
        # docs/architecture.md.
        self._decompose: dict[int, tuple[int, int, int]] = {}
        self.stats = EngineStats()
        # Instrument slots (tracer + fault hook, shared by every
        # memory-side layer via the component graph) start detached; the
        # fault hook is notified right before metadata fetched from memory
        # is verified, so campaigns can model corrupt-on-fill faults.
        self.init_component("mee")
        if config.isolated_trees and config.tree_update_policy is not TreeUpdatePolicy.LAZY:
            raise ValueError("isolated trees are implemented for the lazy policy")
        memctrl.set_write_sink(self._service_write)

    def children(self):
        kids = [self.memctrl, self.counters, self.cipher, self.meta_cache]
        if self.tree_cache is not self.meta_cache:
            kids.append(self.tree_cache)
        kids.extend(self._domain_trees.values())
        return tuple(kids)

    def install_fault_hook(self, hook) -> None:
        """Thread one fault-injection hook through every memory-side layer.

        Deprecated shim over the component graph: equivalent to
        ``repro.core.attach(engine, hook)``.  The hook (a
        ``repro.faults.hooks.FaultHook``) observes DRAM accesses,
        write-queue drains, cache fills, counter increments and metadata
        fetches; ``None`` detaches everywhere.
        """
        if hook is None:
            detach(self, FAULT_HOOK)
        else:
            attach(self, hook, slot=FAULT_HOOK)

    def attach_tracer(self, tracer) -> None:
        """Thread one trace sink through every memory-side layer.

        Deprecated shim over the component graph: equivalent to
        ``repro.core.attach(engine, tracer)``.  The tracer (a
        ``repro.trace.Tracer``) receives metadata-cache hits/misses, tree
        walks and updates, counter overflows, write-queue activity and
        DRAM accesses; ``None`` detaches everywhere.
        """
        if tracer is None:
            detach(self, TRACER)
        else:
            attach(self, tracer, slot=TRACER)

    # ------------------------------------------------------------------
    # Per-domain isolated trees (Section IX-C mitigation)
    # ------------------------------------------------------------------

    # Node addresses of domain d are tagged at bit 44+: far above any
    # physical structure, while leaving metadata-cache set indices and the
    # layout's per-level arithmetic intact after untagging.
    _DOMAIN_SHIFT = 44

    def set_page_domain(self, frame: int, domain: int) -> None:
        """Assign a protected page to a security domain (default 0)."""
        if domain < 0:
            raise ValueError("domain must be non-negative")
        if domain and not self.config.isolated_trees:
            raise ValueError("enable config.isolated_trees to use domains")
        self._page_domain[frame] = domain

    def _tree_for(self, domain: int):
        tree = self._domain_trees.get(domain)
        if tree is None:
            key = keyed_prf(self._tree_key, "domain", domain, out_len=32)
            tree = build_tree(
                self.config, self.layout, key, self.counters.counter_block_image
            )
            # Late-created component: inherit whatever instruments are
            # already attached to the engine (tracer, fault hook, ...).
            adopt(self, tree)
            self._domain_trees[domain] = tree
        return tree

    def _domain_of_cb(self, cb_index: int) -> int:
        if not self.config.isolated_trees:
            return 0
        first_block = cb_index * self.layout.blocks_per_counter_block
        page = first_block * BLOCK_SIZE // 4096
        return self._page_domain.get(page, 0)

    def _tag_node_addr(self, addr: int, domain: int) -> int:
        return addr | (domain << self._DOMAIN_SHIFT)

    def _untag(self, addr: int) -> tuple[int, int]:
        return addr >> self._DOMAIN_SHIFT, addr & ((1 << self._DOMAIN_SHIFT) - 1)

    # ------------------------------------------------------------------
    # Address decomposition (the pure ``decompose`` step)
    # ------------------------------------------------------------------

    def decompose(self, block_addr: int) -> tuple[int, int, int]:
        """Metadata coordinates of a protected data block, memoised.

        Returns ``(counter_block_addr, counter_block_index, mac_addr)``.
        ``block_addr`` must already be block-aligned protected data (the
        callers validate before decomposing).
        """
        parts = self._decompose.get(block_addr)
        if parts is None:
            layout = self.layout
            cb_index = layout.counter_block_index(block_addr)
            parts = (
                layout.counter_block_addr_of_index(cb_index),
                cb_index,
                layout.mac_addr(block_addr),
            )
            self._decompose[block_addr] = parts
        return parts

    # ------------------------------------------------------------------
    # Counter-block hashing (freshness binding, Section IV-C)
    # ------------------------------------------------------------------

    def _expected_cb_hash(self, cb_index: int) -> int:
        """Hash a counter block is *supposed* to carry right now."""
        if not self.config.functional_crypto:
            return 0
        return node_hash(
            self._tree_key,
            "cb",
            cb_index,
            self._leaf_parent_value(cb_index),
            *self.counters.counter_block_image(cb_index),
        )

    def _leaf_parent_value(self, cb_index: int) -> int:
        tree = self._tree_for(self._domain_of_cb(cb_index))
        if hasattr(tree, "leaf_parent_value"):
            return tree.leaf_parent_value(cb_index)
        return 0  # hash tree binds the full image instead

    def _stored_cb_hash(self, cb_index: int) -> int:
        if cb_index not in self._cb_hashes:
            self._cb_hashes[cb_index] = self._expected_cb_hash(cb_index)
        return self._cb_hashes[cb_index]

    def _refresh_cb_hash(self, cb_index: int) -> None:
        self._cb_hashes[cb_index] = self._expected_cb_hash(cb_index)

    def _verify_counter_block(self, cb_index: int) -> None:
        if self._stored_cb_hash(cb_index) != self._expected_cb_hash(cb_index):
            raise IntegrityViolation(
                f"counter block {cb_index} failed freshness verification"
            )
        try:
            self._tree_for(self._domain_of_cb(cb_index)).verify_counter_block(
                cb_index, self.counters.counter_block_image(cb_index)
            )
        except TreeIntegrityError as exc:
            raise IntegrityViolation(str(exc)) from exc

    # ------------------------------------------------------------------
    # Read path (Figure 5 / Algorithm 2)
    # ------------------------------------------------------------------

    def read_data(
        self, addr: int, now: int, txn: Txn = NULL_TXN, *, breakdown: bool = False
    ) -> ReadOutcome:
        """Service an LLC-missing read of a protected data block.

        ``txn`` is the per-access transaction handed down by the
        processor; while it is profiling, the latency is charged into it
        in per-component parts (the data/metadata fetches overlap, so the
        losing side of the ``max()`` race lands in the shadowed tally).
        ``breakdown=True`` is the legacy direct-call form: the engine runs
        its own transaction and returns the split on the outcome; see
        :class:`ReadOutcome` and ``docs/performance.md``.
        """
        block_addr = block_address(addr)
        if not self.layout.is_protected_data(block_addr):
            raise ValueError(f"address {addr:#x} is not protected data")
        own = None
        if breakdown and not txn.profiling:
            own = txn = Txn("read", addr=block_addr, profiling=True)
        self.stats.reads += 1
        crypto = self.config.crypto
        cb_addr, cb_index, mac_addr = self.decompose(block_addr)

        data = txn.leg("data.")
        data_latency = self.memctrl.read_block(block_addr, now, txn=data)
        if not crypto.mac_in_ecc:
            # Classical design: the MAC is a separate memory word fetched
            # on every read (constant extra latency, no state dependence).
            data_latency += self.memctrl.read_block(
                mac_addr, now + data_latency, txn=data
            )
        stall = max(0, self.memctrl.dram.busy_until(block_addr) - now - data_latency)

        meta = txn.leg("meta.")
        counter_hit = self.meta_cache.lookup(cb_addr)
        levels_missed = 0
        if counter_hit:
            self.stats.counter_hits += 1
            meta_latency = self.config.metadata_cache.hit_latency
            meta.charge("cache_hit", meta_latency)
            extra_crypto = max(0, crypto.aes_latency - data_latency)
        else:
            self.stats.counter_misses += 1
            counter_leg = meta.leg("counter.")
            meta_latency = self.memctrl.read_block(cb_addr, now, txn=counter_leg)
            meta.absorb(counter_leg)
            meta_latency, levels_missed = self._verify_walk(
                cb_index, cb_addr, now, meta_latency, leg=meta
            )
            extra_crypto = crypto.aes_latency
        self.stats.tree_levels_missed_histogram[levels_missed] = (
            self.stats.tree_levels_missed_histogram.get(levels_missed, 0) + 1
        )
        if self.tracer is not None:
            self.tracer.emit(
                "mee",
                "counter_hit" if counter_hit else "counter_miss",
                cycle=now,
                addr=cb_addr,
            )
            self.tracer.emit(
                "mee",
                "tree_walk",
                cycle=now,
                addr=cb_addr,
                value=float(levels_missed),
            )

        if block_addr in self._pending_plain:
            # Store-to-load forwarding: the freshest value still sits in the
            # MC write queue.
            plaintext = self._pending_plain[block_addr]
        else:
            plaintext = self._decrypt_and_authenticate(block_addr)
        latency = max(data_latency, meta_latency) + extra_crypto + crypto.mac_latency
        # The data and metadata fetches overlap; only the slower side is
        # on the critical path.  Its leg is absorbed into the attribution,
        # the other side's cycles land in the shadowed tally.
        if data_latency >= meta_latency:
            txn.absorb(data)
            txn.shadow(meta)
        else:
            txn.absorb(meta)
            txn.shadow(data)
        txn.charge("mee.decrypt", extra_crypto)
        txn.charge("mee.mac", crypto.mac_latency)
        attributed = shadowed = None
        if own is not None:
            attributed = dict(own.parts)
            shadowed = dict(own.shadowed)
        return ReadOutcome(
            latency=latency,
            counter_hit=counter_hit,
            tree_levels_missed=levels_missed,
            plaintext=plaintext,
            overflow_stall=stall,
            breakdown=attributed,
            shadowed=shadowed,
        )

    def _verify_walk(
        self,
        cb_index: int,
        cb_addr: int,
        now: int,
        meta_latency: int,
        leg: Txn = NULL_TXN,
    ) -> tuple[int, int]:
        """Algorithm 2: load tree nodes bottom-up until a cached ancestor.

        Returns the accumulated metadata-path latency and the number of
        tree node blocks that had to be fetched from memory.  While
        ``leg`` is profiling, the added cycles are charged under
        per-level ``tree.l<level>.*`` keys within the leg's scope.
        """
        crypto = self.config.crypto
        domain = self._domain_of_cb(cb_index)
        tree = self._tree_for(domain)
        domain_tag = domain << self._DOMAIN_SHIFT
        missed: list[tuple[int, int, int]] = []
        # The path is a pure function of the layout — iterate the memoised
        # decomposition table instead of re-deriving it per access.
        for level, index, base_node_addr in self.layout.path_of(cb_index):
            node_addr = base_node_addr | domain_tag
            if self.tree_cache.lookup(node_addr):
                break
            missed.append((level, index, node_addr))
        # Fetch + verify the missed chain.
        for level, index, node_addr in missed:
            self.stats.tree_node_loads += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "mee", "tree_node_load", cycle=now, addr=node_addr, level=level
                )
            fetch = self.memctrl.read_block(node_addr, now)
            if self.config.parallel_tree_fetch:
                # Address-computable fetches overlap; each extra level adds
                # only bus serialisation plus its verification hash.
                fetch = self.config.dram.bus_latency
            meta_latency += fetch + crypto.hash_latency
            leg.charge(f"tree.l{level}.fetch", fetch)
            leg.charge(f"tree.l{level}.hash", crypto.hash_latency)
            if self.fault_hook is not None:
                self.fault_hook.on_meta_fetch("node", level, index)
            try:
                tree.verify_node(level, index)
            except TreeIntegrityError as exc:
                raise IntegrityViolation(str(exc)) from exc
        # Verify the counter block itself against the leaf.
        meta_latency += crypto.hash_latency
        leg.charge("counter.hash", crypto.hash_latency)
        if self.fault_hook is not None:
            self.fault_hook.on_meta_fetch("counter", 0, cb_index)
        self._verify_counter_block(cb_index)
        # Fill the metadata cache (counter block + fetched nodes).
        self._meta_fill(cb_addr, dirty=False, now=now)
        for _, _, node_addr in missed:
            self._meta_fill(node_addr, dirty=False, now=now)
        return meta_latency, len(missed)

    def _cache_for(self, meta_addr: int) -> SetAssocCache:
        """Which on-chip structure holds this metadata block."""
        _, base_addr = self._untag(meta_addr)
        if self.layout.is_tree_addr(base_addr):
            return self.tree_cache
        return self.meta_cache

    def _meta_fill(self, meta_addr: int, *, dirty: bool, now: int) -> None:
        event = self._cache_for(meta_addr).insert(meta_addr, dirty=dirty)
        if event.evicted_addr is not None and event.evicted_dirty:
            self._on_meta_writeback(event.evicted_addr, now)

    def _on_meta_writeback(self, meta_addr: int, now: int) -> None:
        """A dirty metadata block left the chip (Section V's lazy scheme).

        The block is posted to memory, and — under the lazy policy — its
        write-back is the moment the integrity tree absorbs it: a counter
        block bumps its L0 minor; a level-``l`` node block bumps its parent
        counter (or the on-chip root).  The parent node becomes dirty in
        turn, so sustained write traffic percolates up the tree exactly as
        the paper describes, and any minor-counter overflow encountered on
        the way triggers the subtree reset + re-hash burst.
        """
        if self.tracer is not None:
            self.tracer.emit("mee", "meta_writeback", cycle=now, addr=meta_addr)
        self.memctrl.enqueue_write(meta_addr, now)
        if self.config.tree_update_policy is not TreeUpdatePolicy.LAZY:
            return
        domain, base_addr = self._untag(meta_addr)
        if self.layout.is_counter_addr(base_addr):
            cb_index = self.layout.counter_block_index_of_addr(base_addr)
            domain = self._domain_of_cb(cb_index)
            update = self._tree_for(domain).bump_leaf(cb_index)
            self._refresh_cb_hash(cb_index)
            self._apply_tree_update(update, now)
            leaf_addr = self._tag_node_addr(
                self.layout.node_addr(0, cb_index // self.layout.levels[0].arity),
                domain,
            )
            self._meta_fill(leaf_addr, dirty=True, now=now)
        elif self.layout.is_tree_addr(base_addr):
            level, index = self.layout.node_of_addr(base_addr)
            update = self._tree_for(domain).bump_node(level, index)
            self._apply_tree_update(update, now)
            parent = self.layout.parent_of(level, index)
            if parent is not None:
                parent_addr = self._tag_node_addr(
                    self.layout.node_addr(*parent), domain
                )
                self._meta_fill(parent_addr, dirty=True, now=now)

    def _apply_tree_update(self, update, now: int) -> int:
        """Account for a tree update's bursts; returns engine cycles."""
        cycles = update.levels_touched * self.config.crypto.hash_latency
        for overflow in update.overflows:
            self.stats.tree_counter_overflows += 1
            for affected_cb in overflow.counter_blocks:
                if affected_cb in self._cb_hashes:
                    self._refresh_cb_hash(affected_cb)
            blocks = overflow.node_blocks_affected + len(overflow.counter_blocks)
            burst = blocks * REHASH_BLOCK_COST
            self.memctrl.dram.occupy_all(now, burst)
            cycles += burst
            if self.tracer is not None:
                self.tracer.emit(
                    "mee",
                    "tree_overflow",
                    cycle=now,
                    level=overflow.level,
                    value=float(burst),
                )
        return cycles

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def write_data(self, addr: int, plaintext: bytes, now: int) -> int:
        """Post a write of a protected data block; returns enqueue latency."""
        block_addr = block_address(addr)
        if not self.layout.is_protected_data(block_addr):
            raise ValueError(f"address {addr:#x} is not protected data")
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"writes are {BLOCK_SIZE}-byte blocks")
        self._pending_plain[block_addr] = bytes(plaintext)
        return self.memctrl.enqueue_write(block_addr, now)

    def _service_write(self, block_addr: int, now: int) -> int:
        """Security work when the MC services a write (the write sink)."""
        _, base_addr = self._untag(block_addr)
        if self.layout.is_metadata(base_addr):
            # Plain metadata write-back reaching DRAM; the tree absorbed it
            # already when the block left the metadata cache.
            return self.config.crypto.hash_latency
        if not self.layout.is_protected_data(block_addr):
            return 0

        self.stats.writes_serviced += 1
        if self.tracer is not None:
            self.tracer.emit("mee", "write_service", cycle=now, addr=block_addr)
        crypto = self.config.crypto
        cycles = 0
        cb_addr, cb_index, _ = self.decompose(block_addr)

        # The counter must be on-chip to encrypt the outgoing block.
        if not self.meta_cache.lookup(cb_addr):
            cycles += self.memctrl.read_block(cb_addr, now)
            walk_latency, _ = self._verify_walk(cb_index, cb_addr, now, 0)
            cycles += walk_latency

        # Resolve the value to write *before* the counter moves: a write-back
        # with no pending store keeps the current architectural value, which
        # must be decrypted under the old counter.
        plaintext = self._pending_plain.pop(block_addr, None)
        if plaintext is None:
            plaintext = self._architectural_plaintext(block_addr)

        event = self.counters.increment(self.layout_block_index(block_addr))
        if event.overflowed:
            cycles += self._handle_encryption_overflow(event, now)

        self._store_block(block_addr, plaintext, event.new_counter, event.key_epoch)
        cycles += crypto.aes_latency + crypto.mac_latency
        self._refresh_cb_hash(cb_index)

        if self.config.tree_update_policy is TreeUpdatePolicy.EAGER:
            cycles += self._update_tree_eager(cb_index, cb_addr, now)
        else:
            # Lazy scheme: the counter block is dirtied on-chip; the tree
            # absorbs the update when it is eventually written back.
            self._meta_fill(cb_addr, dirty=True, now=now)
            cycles += crypto.hash_latency
        return cycles

    def layout_block_index(self, addr: int) -> int:
        return block_address(addr) // BLOCK_SIZE

    def _architectural_plaintext(self, block_addr: int) -> bytes:
        if block_addr in self._ciphertext:
            return self._decrypt_and_authenticate(block_addr)
        return bytes(BLOCK_SIZE)

    def _store_block(
        self, block_addr: int, plaintext: bytes, counter: int, key_epoch: int
    ) -> None:
        if not self.config.functional_crypto:
            # Timing-only mode: store the plaintext image directly.
            self._ciphertext[block_addr] = bytes(plaintext)
            return
        ciphertext = self.cipher.encrypt(
            plaintext, block_addr, self._epoch_counter(counter, key_epoch)
        )
        self._ciphertext[block_addr] = ciphertext
        self._macs[block_addr] = self.mac.compute(ciphertext, counter, block_addr)

    @staticmethod
    def _epoch_counter(counter: int, key_epoch: int) -> int:
        """Fold the key epoch into the seed (GC/MoC key-change semantics)."""
        return (key_epoch << 64) | counter

    def _handle_encryption_overflow(self, event: CounterEvent, now: int) -> int:
        """VUL-1: re-encrypt the counter-sharing group, occupying DRAM."""
        self.stats.enc_counter_overflows += 1
        old_epoch = event.key_epoch
        if self.config.counters.scheme is not CounterScheme.SPLIT:
            old_epoch = event.key_epoch - 1
        for group_block, (old_counter, new_counter) in event.reencrypt.items():
            addr = group_block * BLOCK_SIZE
            ciphertext = self._ciphertext.get(addr)
            if ciphertext is None:
                continue
            if self.config.functional_crypto:
                plaintext = self.cipher.decrypt(
                    ciphertext, addr, self._epoch_counter(old_counter, old_epoch)
                )
            else:
                plaintext = ciphertext
            self._store_block(addr, plaintext, new_counter, event.key_epoch)
            self.stats.reencrypted_blocks += 1
        burst = (len(event.reencrypt) + 1) * REENCRYPT_BLOCK_COST
        self.memctrl.dram.occupy_all(now, burst)
        if self.tracer is not None:
            self.tracer.emit("mee", "enc_overflow", cycle=now, value=float(burst))
        return burst

    def _update_tree_eager(self, cb_index: int, cb_addr: int, now: int) -> int:
        """EAGER policy: propagate a write along the whole path at once.

        Simpler than the paper's lazy scheme and useful for ablation, but
        note that upper-level minors then aggregate *all* machine traffic,
        so sustained writes overflow high-level counters periodically.
        """
        update = self.tree.on_counter_block_update(
            cb_index, self.counters.counter_block_image(cb_index)
        )
        self._refresh_cb_hash(cb_index)
        cycles = self._apply_tree_update(update, now)
        # Dirty the path in the metadata cache (nodes now hold newer state
        # than memory and will write back on eviction).
        self._meta_fill(cb_addr, dirty=True, now=now)
        for level, index in self.tree.path_nodes(cb_index):
            self._meta_fill(self.layout.node_addr(level, index), dirty=True, now=now)
        return cycles

    def invalidate_metadata(self, meta_addr: int) -> tuple[bool, bool]:
        """Drop one metadata block from whichever cache holds it."""
        return self._cache_for(meta_addr).invalidate(meta_addr)

    def metadata_cached(self, meta_addr: int) -> bool:
        return self._cache_for(meta_addr).contains(meta_addr)

    def flush_metadata_cache(self, now: int) -> int:
        """Evict every metadata block, processing dirty write-backs.

        Models a metadata-cache cleanse (context switch / experiment reset);
        returns the number of dirty blocks written back.
        """
        dirty_count = 0
        caches = (
            (self.meta_cache, self.tree_cache)
            if self.tree_cache is not self.meta_cache
            else (self.meta_cache,)
        )
        # Write-backs dirty parent nodes, which land back in the caches, so
        # sweep until everything is empty (bounded by the tree depth).
        while any(cache.occupancy() for cache in caches):
            for cache in caches:
                for set_index in range(cache.num_sets):
                    for meta_addr in cache.blocks_in_set(set_index):
                        was_present, was_dirty = cache.invalidate(meta_addr)
                        if was_present and was_dirty:
                            dirty_count += 1
                            self._on_meta_writeback(meta_addr, now)
        return dirty_count

    # ------------------------------------------------------------------
    # Decryption + authentication
    # ------------------------------------------------------------------

    def _decrypt_and_authenticate(self, block_addr: int) -> bytes:
        ciphertext = self._ciphertext.get(block_addr)
        if ciphertext is None:
            # Never written: architecturally zero; nothing to authenticate.
            return bytes(BLOCK_SIZE)
        if not self.config.functional_crypto:
            return ciphertext
        block = self.layout_block_index(block_addr)
        counter = self.counters.current(block)
        mac = self._macs.get(block_addr)
        if mac is None or not self.mac.verify(mac, ciphertext, counter, block_addr):
            raise IntegrityViolation(
                f"data block {block_addr:#x} failed MAC authentication"
            )
        return self.cipher.decrypt(
            ciphertext,
            block_addr,
            self._epoch_counter(counter, self.counters.key_epoch),
        )

    # ------------------------------------------------------------------
    # Tamper API (integration tests: spoof / splice / replay)
    # ------------------------------------------------------------------

    def tamper_spoof(self, addr: int, new_ciphertext: bytes) -> None:
        """Off-chip data spoofing: overwrite a ciphertext block in memory."""
        self._ciphertext[block_address(addr)] = bytes(new_ciphertext)

    def tamper_flip_data_bit(self, addr: int, bit: int) -> None:
        """Flip one bit of a DRAM-resident ciphertext block (rowhammer-ish).

        Flipping is an involution, so applying the same fault twice
        restores the block — fault campaigns rely on this for undo.
        """
        block = block_address(addr)
        image = bytearray(self._ciphertext.get(block, bytes(BLOCK_SIZE)))
        image[(bit // 8) % len(image)] ^= 1 << (bit % 8)
        self._ciphertext[block] = bytes(image)

    def tamper_flip_mac_bit(self, addr: int, bit: int) -> None:
        """Flip one bit of a block's stored MAC (also an involution)."""
        block = block_address(addr)
        mac = bytearray(self._macs.get(block, bytes(8)))
        mac[(bit // 8) % len(mac)] ^= 1 << (bit % 8)
        self._macs[block] = bytes(mac)

    def tamper_splice(self, addr_a: int, addr_b: int) -> None:
        """Swap the ciphertext+MAC of two memory locations."""
        a, b = block_address(addr_a), block_address(addr_b)
        self._ciphertext[a], self._ciphertext[b] = (
            self._ciphertext.get(b, bytes(BLOCK_SIZE)),
            self._ciphertext.get(a, bytes(BLOCK_SIZE)),
        )
        self._macs[a], self._macs[b] = (
            self._macs.get(b, b""),
            self._macs.get(a, b""),
        )

    def snapshot_block(self, addr: int) -> tuple[bytes, bytes]:
        """Capture (ciphertext, MAC) for a later replay."""
        block = block_address(addr)
        return (
            self._ciphertext.get(block, bytes(BLOCK_SIZE)),
            self._macs.get(block, b""),
        )

    def tamper_replay(self, addr: int, snapshot: tuple[bytes, bytes]) -> None:
        """Data replay: restore a previously captured (ciphertext, MAC)."""
        block = block_address(addr)
        self._ciphertext[block], self._macs[block] = snapshot
