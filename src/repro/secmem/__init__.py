"""Security-metadata machinery: counters, integrity trees, and the MEE.

This package implements the mechanisms of Sections IV–V of the paper:
encryption-counter schemes with Algorithm-1 overflow handling (VUL-1),
metadata address layout, the three integrity-tree designs (HT / SCT / SIT)
with Algorithm-2 verification, the shared metadata cache, and the memory
encryption engine that stitches them onto the memory controller.
"""

from repro.secmem.counters import CounterEvent, EncryptionCounterStore
from repro.secmem.engine import (
    IntegrityViolation,
    MemoryEncryptionEngine,
    ReadOutcome,
)
from repro.secmem.layout import MetadataLayout
from repro.secmem.tree import (
    CounterTree,
    HashTree,
    IntegrityTree,
    TreeUpdate,
    build_tree,
)

__all__ = [
    "CounterEvent",
    "EncryptionCounterStore",
    "IntegrityViolation",
    "MemoryEncryptionEngine",
    "ReadOutcome",
    "MetadataLayout",
    "CounterTree",
    "HashTree",
    "IntegrityTree",
    "TreeUpdate",
    "build_tree",
]
