"""Encryption-counter schemes with Algorithm-1 overflow handling (VUL-1).

Three organisations from Section IV-A / Figure 3:

* **GC** — one global counter; per-block snapshots stored as metadata.
  Global overflow forces whole-memory re-encryption under a new key.
* **MoC** — one monolithic counter per block; overflow still re-encrypts
  all of memory (key change).
* **SC** — per-page 64-bit major + per-block 7-bit minors.  A minor
  overflow increments the shared major and re-encrypts only that page's
  counter-sharing group.

``increment`` returns a :class:`CounterEvent` describing exactly which data
blocks must be re-encrypted, and with which old/new counter values — the
memory encryption engine turns that into functional re-encryption plus a
long bank-occupying burst (the VUL-1 timing signal).

The store is a purely *functional* component (docs/architecture.md):
:meth:`EncryptionCounterStore.decompose` is the pure address step mapping
a data block to its (counter-block, slot) coordinates, ``increment`` is
the ``apply`` state transition, and no latency lives here — the engine
charges all counter-path cycles from its own timing tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CounterConfig, CounterScheme
from repro.core import Component
from repro.secmem.layout import MetadataLayout


@dataclass(frozen=True)
class CounterEvent:
    """Result of bumping a block's write counter.

    ``reencrypt`` maps data-block index -> (old_counter, new_counter) for
    every block that must be re-encrypted due to an overflow (empty when no
    overflow occurred).  ``new_counter`` is the value to encrypt the
    currently-written block with.
    """

    block_index: int
    new_counter: int
    overflowed: bool = False
    reencrypt: dict[int, tuple[int, int]] = field(default_factory=dict)
    key_epoch: int = 0


@dataclass
class _SplitCounterBlock:
    major: int = 0
    minors: list[int] = field(default_factory=list)


class EncryptionCounterStore(Component):
    """Sparse store of encryption counters for the protected region."""

    def __init__(self, config: CounterConfig, layout: MetadataLayout) -> None:
        self.config = config
        self.layout = layout
        self.scheme = config.scheme
        # SC state: counter-block index -> (major, minors)
        self._split: dict[int, _SplitCounterBlock] = {}
        # MoC state: data-block index -> counter
        self._mono: dict[int, int] = {}
        # GC state: one counter + per-block snapshots
        self._global_counter = 0
        self._snapshots: dict[int, int] = {}
        # Blocks that have ever been written (the only ones that can need
        # re-encryption; everything else still holds its initial pad).
        self._written: set[int] = set()
        self.key_epoch = 0
        self.overflows = 0
        # Instrument slots (the fault hook observes counter increments)
        # are created detached by the component graph.
        self.init_component("counters")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def decompose(self, block: int) -> tuple[int, int]:
        """Pure address step: (counter-block index, slot) of a data block."""
        per_cb = self.layout.blocks_per_counter_block
        return block // per_cb, block % per_cb

    def _split_block(self, cb_index: int) -> _SplitCounterBlock:
        state = self._split.get(cb_index)
        if state is None:
            state = _SplitCounterBlock(
                major=0, minors=[0] * self.layout.blocks_per_counter_block
            )
            self._split[cb_index] = state
        return state

    def fused(self, major: int, minor: int) -> int:
        """Combine major and minor into the seed counter (SC mode)."""
        return (major << self.config.minor_bits) | minor

    def current(self, block: int) -> int:
        """Counter value a block's ciphertext is currently encrypted under."""
        if self.scheme is CounterScheme.SPLIT:
            cb_index, slot = self.decompose(block)
            state = self._split_block(cb_index)
            return self.fused(state.major, state.minors[slot])
        if self.scheme is CounterScheme.MONOLITHIC:
            return self._mono.get(block, 0)
        return self._snapshots.get(block, 0)

    def split_state(self, cb_index: int) -> tuple[int, tuple[int, ...]]:
        """(major, minors) of one counter block — the memory-resident image."""
        if self.scheme is not CounterScheme.SPLIT:
            raise ValueError("split_state only meaningful in SC mode")
        state = self._split_block(cb_index)
        return state.major, tuple(state.minors)

    def counter_block_image(self, cb_index: int) -> tuple[int, ...]:
        """Canonical tuple of the counter block's content, any scheme.

        Used for hashing/MACing the counter block and by tamper tests.
        """
        if self.scheme is CounterScheme.SPLIT:
            state = self._split_block(cb_index)
            return (state.major, *state.minors)
        blocks = self.layout.data_blocks_of_counter_block(cb_index)
        if self.scheme is CounterScheme.MONOLITHIC:
            return tuple(self._mono.get(b, 0) for b in blocks)
        return tuple(self._snapshots.get(b, 0) for b in blocks)

    def written_blocks(self) -> frozenset[int]:
        return frozenset(self._written)

    # ------------------------------------------------------------------
    # Algorithm 1: increment with overflow handling
    # ------------------------------------------------------------------

    def increment(self, block: int) -> CounterEvent:
        """Bump the write counter for ``block`` (one serviced write)."""
        if self.fault_hook is not None:
            self.fault_hook.on_counter_increment(block)
        self._written.add(block)
        if self.scheme is CounterScheme.SPLIT:
            return self._increment_split(block)
        if self.scheme is CounterScheme.MONOLITHIC:
            return self._increment_monolithic(block)
        return self._increment_global(block)

    def _increment_split(self, block: int) -> CounterEvent:
        cb_index, slot = self.decompose(block)
        state = self._split_block(cb_index)
        if state.minors[slot] < self.config.minor_max:
            state.minors[slot] += 1
            return CounterEvent(
                block_index=block,
                new_counter=self.fused(state.major, state.minors[slot]),
                key_epoch=self.key_epoch,
            )
        # Minor overflow: increment the shared major, reset every minor,
        # re-encrypt the whole counter-sharing group (one page).
        self.overflows += 1
        old_major = state.major
        old_minors = list(state.minors)
        state.major += 1
        state.minors = [0] * len(state.minors)
        state.minors[slot] = 1
        reencrypt: dict[int, tuple[int, int]] = {}
        first_block = cb_index * self.layout.blocks_per_counter_block
        for offset, old_minor in enumerate(old_minors):
            group_block = first_block + offset
            if group_block == block or group_block not in self._written:
                continue
            reencrypt[group_block] = (
                self.fused(old_major, old_minor),
                self.fused(state.major, state.minors[offset]),
            )
        return CounterEvent(
            block_index=block,
            new_counter=self.fused(state.major, state.minors[slot]),
            overflowed=True,
            reencrypt=reencrypt,
            key_epoch=self.key_epoch,
        )

    def _increment_monolithic(self, block: int) -> CounterEvent:
        limit = (1 << self.config.monolithic_bits) - 1
        value = self._mono.get(block, 0)
        if value < limit:
            self._mono[block] = value + 1
            return CounterEvent(
                block_index=block, new_counter=value + 1, key_epoch=self.key_epoch
            )
        # Monolithic overflow: key change + whole-memory re-encryption.
        self.overflows += 1
        self.key_epoch += 1
        reencrypt = {
            b: (self._mono.get(b, 0), self._mono.get(b, 0))
            for b in self._written
            if b != block
        }
        self._mono[block] = 0
        return CounterEvent(
            block_index=block,
            new_counter=0,
            overflowed=True,
            reencrypt=reencrypt,
            key_epoch=self.key_epoch,
        )

    def _increment_global(self, block: int) -> CounterEvent:
        limit = (1 << self.config.monolithic_bits) - 1
        if self._global_counter < limit:
            self._global_counter += 1
            self._snapshots[block] = self._global_counter
            return CounterEvent(
                block_index=block,
                new_counter=self._global_counter,
                key_epoch=self.key_epoch,
            )
        self.overflows += 1
        self.key_epoch += 1
        self._global_counter = 1
        reencrypt = {
            b: (self._snapshots.get(b, 0), self._snapshots.get(b, 0))
            for b in self._written
            if b != block
        }
        self._snapshots = {b: 1 for b in self._written}
        return CounterEvent(
            block_index=block,
            new_counter=1,
            overflowed=True,
            reencrypt=reencrypt,
            key_epoch=self.key_epoch,
        )

    # ------------------------------------------------------------------
    # Tamper API (integration tests only)
    # ------------------------------------------------------------------

    def tamper_split_minor(self, cb_index: int, slot: int, value: int) -> None:
        """Directly corrupt a stored minor counter, bypassing re-hash."""
        if self.scheme is not CounterScheme.SPLIT:
            raise ValueError("tamper_split_minor requires SC mode")
        self._split_block(cb_index).minors[slot] = value

    def tamper_counter(self, block: int, value: int) -> int:
        """Corrupt the DRAM-resident counter state of one data block.

        Scheme-generic (SC: the block's minor; MoC: its counter; GC: its
        snapshot); bypasses all hashing, exactly like an off-chip bit
        flip.  Returns the previous value so fault campaigns can restore
        the state after checking detection.
        """
        if self.scheme is CounterScheme.SPLIT:
            cb_index, slot = self.decompose(block)
            state = self._split_block(cb_index)
            old = state.minors[slot]
            state.minors[slot] = value
            return old
        if self.scheme is CounterScheme.MONOLITHIC:
            old = self._mono.get(block, 0)
            self._mono[block] = value
            return old
        old = self._snapshots.get(block, 0)
        self._snapshots[block] = value
        return old
