"""Deterministic result-payload codec for the campaign DB.

Campaign results must round-trip through sqlite and come back as the
objects the rest of the tooling expects (:class:`FigureResult`,
:class:`CampaignReport`, :class:`LeakReport`, ...), and two runs of the
same task must serialise to *byte-identical* text so serial-vs-parallel
determinism can be asserted on the stored payloads directly.  JSON with
sorted keys and explicit markers for the few non-JSON shapes we care
about (dataclasses, enums, tuples, bytes) gives both properties without
resorting to pickle — payloads stay greppable and diffable.

Decoding only reconstructs types defined inside the ``repro`` package:
a campaign DB is an artifact that may travel between machines, and it
should never be able to instantiate arbitrary classes.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
from typing import Any

#: Reserved marker key; a plain payload dict may not use it.
_MARK = "__repro__"


class PayloadError(TypeError):
    """A result value the codec cannot (de)serialise."""


def _type_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if not module_name.startswith("repro"):
        raise PayloadError(f"refusing to resolve non-repro type {path!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not isinstance(obj, type):
        raise PayloadError(f"{path!r} did not resolve to a class")
    return obj


def _encode(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            return {_MARK: "float", "repr": repr(obj)}
        return obj
    if isinstance(obj, enum.Enum):
        return {
            _MARK: "enum",
            "type": _type_path(type(obj)),
            "value": _encode(obj.value),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            _MARK: "dataclass",
            "type": _type_path(type(obj)),
            "fields": {
                field.name: _encode(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, tuple):
        return {_MARK: "tuple", "items": [_encode(item) for item in obj]}
    if isinstance(obj, bytes):
        return {_MARK: "bytes", "hex": obj.hex()}
    if isinstance(obj, list):
        return [_encode(item) for item in obj]
    if isinstance(obj, dict):
        if _MARK in obj:
            raise PayloadError(f"payload dict uses reserved key {_MARK!r}")
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise PayloadError(
                    f"payload dict keys must be strings, got {key!r}"
                )
            out[key] = _encode(value)
        return out
    raise PayloadError(
        f"cannot serialise {type(obj).__name__!r} result for the campaign DB"
    )


def _decode(obj: Any) -> Any:
    if isinstance(obj, list):
        return [_decode(item) for item in obj]
    if not isinstance(obj, dict):
        return obj
    mark = obj.get(_MARK)
    if mark is None:
        return {key: _decode(value) for key, value in obj.items()}
    if mark == "float":
        return float(obj["repr"])
    if mark == "tuple":
        return tuple(_decode(item) for item in obj["items"])
    if mark == "bytes":
        return bytes.fromhex(obj["hex"])
    if mark == "enum":
        return _resolve(obj["type"])(_decode(obj["value"]))
    if mark == "dataclass":
        cls = _resolve(obj["type"])
        if not dataclasses.is_dataclass(cls):
            raise PayloadError(f"{obj['type']!r} is not a dataclass")
        fields = {
            name: _decode(value) for name, value in obj["fields"].items()
        }
        return cls(**fields)
    raise PayloadError(f"unknown payload marker {mark!r}")


def encode_payload(obj: Any) -> str:
    """Serialise a task result to canonical (byte-stable) JSON text."""
    return json.dumps(
        _encode(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def decode_payload(text: str) -> Any:
    """Reconstruct a task result from :func:`encode_payload` text."""
    return _decode(json.loads(text))
