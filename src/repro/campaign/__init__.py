"""Crash-isolated sharded campaign engine with a persistent result cache.

Every expensive workload in the repro — figure regeneration, fault
campaigns, leakcheck seed-sweeps, the bench suite — is a batch of
independent seeded runs.  This package executes such batches across
worker processes with deterministic results (serial and ``--jobs N``
runs are byte-identical), reaps crashed or hung workers and retries
their tasks, and memoises every successful run in a sqlite campaign DB
keyed by config hash + git revision so unchanged re-runs are served
from cache.  See ``docs/robustness.md``.
"""

from repro.campaign.db import CampaignDB, JobRow, RunRow, config_hash
from repro.campaign.engine import (
    CampaignEngine,
    CampaignTask,
    derive_task_seed,
)
from repro.campaign.payload import (
    PayloadError,
    decode_payload,
    encode_payload,
)
from repro.campaign.worker import TEST_CRASH_ENV, TEST_CRASH_EXIT

__all__ = [
    "CampaignDB",
    "CampaignEngine",
    "CampaignTask",
    "JobRow",
    "PayloadError",
    "RunRow",
    "TEST_CRASH_ENV",
    "TEST_CRASH_EXIT",
    "config_hash",
    "decode_payload",
    "derive_task_seed",
    "encode_payload",
]
