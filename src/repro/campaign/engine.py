"""Crash-isolated sharded campaign engine.

The coordinator fans :class:`CampaignTask` specs out to worker
processes (:mod:`repro.campaign.worker`) and aggregates the outcomes
into the runner's existing :class:`~repro.runner.TaskRecord` /
:class:`~repro.runner.BatchReport` checkpoint format, so manifests
written by a parallel campaign resume seamlessly under the serial
runner and vice versa.

Guarantees:

* **Determinism** — task identity (name, function, kwargs) fully
  determines the work; nothing about shard assignment or completion
  order feeds back into a task, so a serial run and an ``--jobs N`` run
  produce identical result payloads.  Reseeded retries derive their
  seed from the attempt index exactly like the serial runner.
* **Crash isolation** — a worker that exits (segfault, OOM kill,
  ``os._exit``), raises, or stops heartbeating is reaped by the
  coordinator's watchdog pass; its task is retried with exponential
  backoff (and a fresh seed, when the task accepts one) on a fresh
  worker.  Exhausted retries degrade to a structured ``failed`` /
  ``timeout`` record — a batch is never lost wholesale.
* **Result caching** — with a :class:`~repro.campaign.db.CampaignDB`
  attached, a task whose config hash and git revision match a stored
  successful run is served from the DB without executing anything, and
  every executed task's terminal outcome is recorded for the next run.

Worker/cache/retry activity is tallied in a standard
:class:`~repro.trace.counters.CounterRegistry` (``cache.hits``,
``workers.crashed``, ...) so the existing Prometheus/JSON exporters
work on campaigns unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable

from repro import obs
from repro.campaign.db import CampaignDB, config_hash
from repro.campaign.payload import PayloadError, decode_payload, encode_payload
from repro.campaign.worker import execute_task, worker_main
from repro.runner.core import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    BatchReport,
    ExperimentRunner,
    TaskRecord,
    TaskSpec,
    _accepts_seed,
    _write_manifest,
    load_manifest,
)
from repro.trace.counters import CounterRegistry
from repro.utils.provenance import git_rev as _git_rev

#: Coordinator poll tick (seconds): watchdog + scheduler cadence.
_TICK = 0.05

#: Grace multiplier for the watchdog's hard deadline over the task
#: timeout: the worker's own SIGALRM should fire first; the watchdog
#: kill is the backstop for workers stuck where the alarm cannot reach.
_DEADLINE_SLACK = 1.5
_DEADLINE_GRACE = 5.0


@dataclass(frozen=True)
class CampaignTask:
    """One unit of campaign work: a picklable callable plus arguments.

    ``fn`` must be an importable module-level callable for the task to
    ship to a worker process; anything else (lambdas, closures) still
    runs, but inline in the coordinator as a graceful degradation.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    timeout: float | None = None  # overrides the engine default
    retries: int | None = None  # overrides the engine default

    @property
    def config_hash(self) -> str:
        return config_hash(self.name, self.fn, self.kwargs)


def _fn_resolvable(fn: Callable[..., Any]) -> bool:
    """Is ``fn`` importable as a stable module-level name?

    Cache identity hashes the function's ``module:qualname``; closures
    and lambdas defined in different places can share a qualname, so a
    function that does not resolve back to the same object is excluded
    from the campaign DB entirely (it still runs — it just never serves
    from or stores to the cache).
    """
    mod_name = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not mod_name or not qualname or "<" in qualname:
        return False
    obj: Any = sys.modules.get(mod_name)
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def derive_task_seed(base: int, name: str, attempt: int) -> int:
    """Deterministic per-task reseed, independent of shard assignment."""
    from repro.utils.rng import derive_rng

    return derive_rng(base, "campaign", name, f"attempt{attempt}").getrandbits(63)


class _TaskState:
    """Coordinator-side bookkeeping for one in-flight task."""

    __slots__ = (
        "task", "attempts", "eligible_at", "started", "last_status",
        "last_error", "last_detail", "seed", "timeout", "retries",
        "span", "queued_wall", "started_wall",
    )

    def __init__(self, task: CampaignTask, *, timeout: float | None,
                 retries: int) -> None:
        self.task = task
        self.attempts = 0
        self.eligible_at = 0.0
        self.started: float | None = None
        self.last_status = STATUS_FAILED
        self.last_error = ""
        self.last_detail = ""
        self.seed: int | None = None
        self.timeout = timeout
        self.retries = retries
        # Fleet tracing + queue-wait bookkeeping (wall clock, not the
        # monotonic clock `started` uses for elapsed).
        self.span: Any = obs.NULL_SPAN
        self.queued_wall = time.time()
        self.started_wall: float | None = None

    def attempt_kwargs(self, reseed_base: int | None) -> dict[str, Any]:
        kwargs = dict(self.task.kwargs)
        if (
            self.attempts > 0
            and reseed_base is not None
            and _accepts_seed(self.task.fn)
        ):
            # Retry under fresh, shard-independent randomness.
            self.seed = (reseed_base or 0) + self.attempts
            kwargs.setdefault("seed", self.seed)
        return kwargs


class _Worker:
    """One worker process plus its pipe and heartbeat cell."""

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.beat = ctx.Value("d", time.time(), lock=False)
        self.proc = ctx.Process(
            target=worker_main, args=(child_conn, self.beat), daemon=True,
            name="campaign-worker",
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.state: _TaskState | None = None
        self.deadline: float | None = None
        self.assigned_wall: float | None = None

    @property
    def busy(self) -> bool:
        return self.state is not None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Orderly shutdown; falls back to kill if the worker lingers."""
        try:
            self.conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


class CampaignEngine:
    """Run a batch of :class:`CampaignTask` across worker processes."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 1.0,
        reseed_base: int | None = None,
        db: CampaignDB | str | os.PathLike[str] | None = None,
        use_cache: bool = True,
        manifest_path: str | os.PathLike[str] | None = None,
        resume: bool = False,
        fail_fast: bool = False,
        heartbeat_timeout: float = 30.0,
        registry: CounterRegistry | None = None,
        git_rev: str | None = None,
        span_parent: "obs.SpanContext | None" = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be a positive worker count")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.reseed_base = reseed_base
        self.db = CampaignDB(db) if isinstance(db, (str, os.PathLike)) else db
        self.use_cache = use_cache
        self.manifest_path = manifest_path
        self.resume = resume
        self.fail_fast = fail_fast
        self.heartbeat_timeout = heartbeat_timeout
        self.git_rev = git_rev if git_rev is not None else _git_rev()
        # Explicit parent span context for the campaign.run span: the
        # service runs engines on executor threads where the caller's
        # contextvar does not propagate, so it hands the job span here.
        self.span_parent = span_parent
        self._queue_waits: list[float] = []
        # Cooperative shutdown: request_stop() (drain: in-flight tasks
        # finish, pending tasks become cancelled records) and the
        # coordinator's own SIGINT/SIGTERM handler (interrupt: in-flight
        # workers are killed too).  Both are sticky for the engine's
        # lifetime; an engine runs one campaign.
        self._stop_requested = False
        self._interrupted = False
        # Retry backoff uses full jitter (uniform in [0, cap]) so many
        # shards failing at once do not retry in lockstep; seeding from
        # reseed_base keeps test campaigns reproducible.
        self._backoff_rng = random.Random(reseed_base)

        self.registry = registry if registry is not None else CounterRegistry()
        self._c_tasks = self.registry.counter("tasks")
        self._c_executed = self.registry.counter("executed")
        self._c_ok = self.registry.counter("ok")
        self._c_failed = self.registry.counter("failed")
        self._c_timeout = self.registry.counter("timeout")
        self._c_skipped = self.registry.counter("skipped")
        self._c_retries = self.registry.counter("retries")
        self._c_cancelled = self.registry.counter("cancelled")
        self._c_inline = self.registry.counter("inline_fallbacks")
        cache_reg = CounterRegistry()
        self.registry.mount("cache", cache_reg)
        self._c_cache_hits = cache_reg.counter("hits")
        self._c_cache_misses = cache_reg.counter("misses")
        self._c_cache_stores = cache_reg.counter("stores")
        self._c_manifest_hits = cache_reg.counter("manifest_hits")
        self._c_uncacheable = cache_reg.counter("uncacheable")
        worker_reg = CounterRegistry()
        self.registry.mount("workers", worker_reg)
        self._c_spawned = worker_reg.counter("spawned")
        self._c_crashed = worker_reg.counter("crashed")
        self._c_hung = worker_reg.counter("hung")

    # -- public API --------------------------------------------------------

    def run(
        self,
        tasks: list[CampaignTask],
        *,
        on_record: Callable[[TaskRecord], None] | None = None,
    ) -> BatchReport:
        """Run every task; ``on_record`` streams outcomes as they land."""
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique within a campaign")
        self._c_tasks.incr(len(tasks))
        run_span = obs.start_span(
            "campaign.run", kind="campaign.run", parent=self.span_parent,
            attrs={"jobs": self.jobs, "tasks": len(tasks)},
        )
        with run_span:
            manifest: dict[str, TaskRecord] = {}
            if self.manifest_path is not None and self.resume:
                manifest = load_manifest(self.manifest_path)

            results: dict[str, TaskRecord] = {}
            to_run: list[CampaignTask] = []
            tracing = obs.active() is not None
            for task in tasks:
                previous = manifest.get(task.name)
                if previous is not None and previous.ok:
                    previous.cached = True
                    self._c_manifest_hits.incr()
                    self._land(previous, manifest, on_record, persist=False)
                    results[task.name] = previous
                    if tracing:
                        obs.start_span(
                            "campaign.task", kind="campaign.task",
                            attrs={"task": task.name, "cache": "manifest"},
                        ).end(STATUS_OK)
                    continue
                cached = self._cache_lookup(task)
                if cached is not None:
                    self._land(cached, manifest, on_record, persist=False)
                    results[task.name] = cached
                    if tracing:
                        obs.start_span(
                            "campaign.task", kind="campaign.task",
                            attrs={"task": task.name, "cache": "hit"},
                        ).end(STATUS_OK)
                    continue
                to_run.append(task)

            if to_run:
                if self.jobs == 1:
                    self._run_serial(to_run, results, manifest, on_record)
                else:
                    self._run_parallel(to_run, results, manifest, on_record)

            report = BatchReport()
            report.records = [results[name] for name in names]
            run_span.set_many({
                "executed": int(self._c_executed.value),
                "cached": int(self._c_cache_hits.value
                              + self._c_manifest_hits.value),
                "failed": int(self._c_failed.value + self._c_timeout.value),
                "retries": int(self._c_retries.value),
            })
            return report

    def summary_line(self) -> str:
        """One-line campaign tally for CLI output (and CI grepping)."""
        total = int(self._c_tasks.value)
        cached = int(self._c_cache_hits.value + self._c_manifest_hits.value)
        executed = int(self._c_executed.value)
        failed = int(self._c_failed.value + self._c_timeout.value)
        parts = [
            f"campaign: {total} task(s) — {executed} executed, "
            f"{cached} cached, {failed} failed/timeout, "
            f"{int(self._c_retries.value)} retried (jobs={self.jobs})"
        ]
        crashes = int(self._c_crashed.value + self._c_hung.value)
        if crashes:
            parts.append(f"{crashes} worker crash(es) reaped")
        if self._queue_waits:
            avg = sum(self._queue_waits) / len(self._queue_waits)
            parts.append(
                f"queue-wait avg {avg:.2f}s max {max(self._queue_waits):.2f}s"
            )
        if total and executed == 0 and failed == 0 and cached == total:
            parts.append(f"all {total} task(s) served from campaign cache")
        return "; ".join(parts)

    def request_stop(self) -> None:
        """Ask a running campaign to drain: finish in-flight tasks, turn
        every still-pending task into a ``cancelled`` record, and return
        normally.  Safe to call from any thread (the leakcheck service
        calls it from its event loop during graceful shutdown)."""
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    # -- shared plumbing ---------------------------------------------------

    def _retry_delay(self, attempts: int) -> float:
        """Full-jitter exponential backoff delay before retry ``attempts``.

        Uniform in ``[0, backoff * 2**(attempts-1)]``: the cap preserves
        the exponential envelope while the jitter decorrelates retries,
        so a wave of shards failing together (worker host hiccup, shared
        resource exhaustion) does not re-execute in lockstep.
        """
        if self.backoff <= 0:
            return 0.0
        cap = self.backoff * (2 ** max(0, attempts - 1))
        return self._backoff_rng.uniform(0.0, cap)

    def _cancel_record(self, name: str, why: str) -> TaskRecord:
        self._c_cancelled.incr()
        return TaskRecord(
            name=name, status=STATUS_SKIPPED, error=f"cancelled ({why})"
        )

    def _effective(self, task: CampaignTask) -> tuple[float | None, int]:
        timeout = task.timeout if task.timeout is not None else self.timeout
        retries = task.retries if task.retries is not None else self.retries
        return timeout, retries

    def _cache_lookup(self, task: CampaignTask) -> TaskRecord | None:
        if self.db is None or not self.use_cache:
            return None
        if not _fn_resolvable(task.fn):
            self._c_uncacheable.incr()
            return None
        row = self.db.lookup(task.config_hash, self.git_rev)
        if row is None:
            self._c_cache_misses.incr()
            return None
        try:
            result = decode_payload(row.payload or "")
        except (PayloadError, ValueError, KeyError, AttributeError,
                ImportError):
            # A corrupt or stale payload is a miss, never a bad result.
            self._c_cache_misses.incr()
            return None
        self._c_cache_hits.incr()
        return TaskRecord(
            name=task.name,
            status=STATUS_OK,
            attempts=row.attempts,
            elapsed=row.elapsed,
            seed=row.seed,
            cached=True,
            result=result,
        )

    def _land(
        self,
        record: TaskRecord,
        manifest: dict[str, TaskRecord],
        on_record: Callable[[TaskRecord], None] | None,
        *,
        persist: bool,
        task: CampaignTask | None = None,
    ) -> None:
        """Finalize one record: counters, campaign DB, manifest, callback."""
        if record.queued_at and record.started_at:
            self._queue_waits.append(record.queue_wait)
        if not record.cached and record.status != STATUS_SKIPPED:
            self._c_executed.incr()
            self._c_retries.incr(max(0, record.attempts - 1))
            if record.status == STATUS_OK:
                self._c_ok.incr()
            elif record.status == STATUS_TIMEOUT:
                self._c_timeout.incr()
            else:
                self._c_failed.incr()
        elif record.status == STATUS_SKIPPED:
            self._c_skipped.incr()
        if (
            persist
            and self.db is not None
            and task is not None
            and _fn_resolvable(task.fn)
        ):
            payload = None
            detail = record.detail
            if record.status == STATUS_OK:
                try:
                    payload = encode_payload(record.result)
                except PayloadError as error:
                    note = f"payload not cacheable: {error}"
                    detail = (detail + "\n" + note).strip()
                    record.detail = detail
            self.db.record_run(
                config_hash=task.config_hash,
                git_rev=self.git_rev,
                name=record.name,
                seed=record.seed,
                status=record.status,
                attempts=record.attempts,
                elapsed=record.elapsed,
                error=record.error,
                detail=detail,
                payload=payload,
            )
            if payload is not None:
                self._c_cache_stores.incr()
        manifest[record.name] = record
        if self.manifest_path is not None:
            _write_manifest(self.manifest_path, manifest)
        if on_record is not None:
            on_record(record)

    # -- serial path -------------------------------------------------------

    def _run_serial(
        self,
        tasks: list[CampaignTask],
        results: dict[str, TaskRecord],
        manifest: dict[str, TaskRecord],
        on_record: Callable[[TaskRecord], None] | None,
    ) -> None:
        # Delegate per-task execution to the serial runner so timeout,
        # retry, backoff, and reseed semantics stay bit-compatible.
        runner = ExperimentRunner(
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            reseed_base=self.reseed_base,
        )
        abort = False
        batch_queued_at = time.time()
        for task in tasks:
            if self._stop_requested:
                record = self._cancel_record(task.name, "drain requested")
            elif abort:
                record = TaskRecord(
                    name=task.name,
                    status=STATUS_SKIPPED,
                    error="skipped (fail-fast)",
                )
            else:
                task_span = obs.start_span(
                    "campaign.task", kind="campaign.task",
                    attrs={"task": task.name},
                )
                with task_span:
                    record = runner._run_one(
                        TaskSpec(
                            name=task.name,
                            fn=task.fn,
                            kwargs=task.kwargs,
                            timeout=task.timeout,
                            retries=task.retries,
                        ),
                        queued_at=batch_queued_at,
                    )
                    task_span.outcome = record.status
                    task_span.set_many(
                        {"attempts": record.attempts,
                         "queue_wait_s": round(record.queue_wait, 6)}
                    )
            results[task.name] = record
            self._land(record, manifest, on_record,
                       persist=record.status != STATUS_SKIPPED, task=task)
            if self.fail_fast and record.status in (STATUS_FAILED,
                                                    STATUS_TIMEOUT):
                abort = True

    # -- parallel path -----------------------------------------------------

    @staticmethod
    def _mp_context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def _run_parallel(
        self,
        tasks: list[CampaignTask],
        results: dict[str, TaskRecord],
        manifest: dict[str, TaskRecord],
        on_record: Callable[[TaskRecord], None] | None,
    ) -> None:
        ctx = self._mp_context()
        tracing = obs.active() is not None
        pending: list[_TaskState] = []
        for task in tasks:
            timeout, retries = self._effective(task)
            state = _TaskState(task, timeout=timeout, retries=retries)
            if tracing:
                state.span = obs.start_span(
                    "campaign.task", kind="campaign.task",
                    attrs={"task": task.name,
                           "config_hash": task.config_hash[:12]},
                )
            pending.append(state)
        workers: list[_Worker] = []
        abort = False
        # The coordinator owns worker processes, so Ctrl-C / SIGTERM must
        # reap them and flush landed records instead of dying mid-batch
        # and leaking orphans.  The handler only flips flags; the loop
        # below does the cleanup, then KeyboardInterrupt is re-raised so
        # callers see the usual interrupt exit.  Handlers can only be
        # installed on the main thread; engines running inside service
        # executor threads rely on request_stop() instead.
        installed: list[tuple[int, Any]] = []
        if threading.current_thread() is threading.main_thread():
            def _on_signal(signum: int, frame: Any) -> None:  # noqa: ARG001
                self._interrupted = True
                self._stop_requested = True

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    installed.append((signum, signal.signal(signum, _on_signal)))
                except (ValueError, OSError):  # pragma: no cover
                    pass
        try:
            while pending or any(w.busy for w in workers):
                now = time.monotonic()
                self._watchdog_pass(workers, pending, now)
                if self._stop_requested:
                    why = ("interrupted" if self._interrupted
                           else "drain requested")
                    for state in pending:
                        record = self._cancel_record(state.task.name, why)
                        results[state.task.name] = record
                        self._land(record, manifest, on_record,
                                   persist=False, task=state.task)
                        state.span.end("cancelled")
                    pending.clear()
                    if self._interrupted:
                        # Interrupt also abandons in-flight work: kill
                        # the workers and land cancelled records so the
                        # manifest reflects exactly what completed.
                        for worker in list(workers):
                            state, worker.state = worker.state, None
                            if state is not None:
                                record = self._cancel_record(
                                    state.task.name, why
                                )
                                results[state.task.name] = record
                                self._land(record, manifest, on_record,
                                           persist=False, task=state.task)
                                state.span.end("cancelled")
                            worker.kill()
                            workers.remove(worker)
                        break
                if abort and pending:
                    # Fail-fast: nothing new is scheduled; in-flight
                    # tasks finish, the rest become skipped records.
                    for state in pending:
                        record = TaskRecord(
                            name=state.task.name,
                            status=STATUS_SKIPPED,
                            error="skipped (fail-fast)",
                        )
                        results[state.task.name] = record
                        self._land(record, manifest, on_record,
                                   persist=False, task=state.task)
                        state.span.end(STATUS_SKIPPED)
                    pending.clear()
                self._assign(ctx, workers, pending, results, manifest,
                             on_record, now)
                busy_conns = [w.conn for w in workers if w.busy]
                if busy_conns:
                    try:
                        ready = mp_connection.wait(busy_conns, timeout=_TICK)
                    except OSError:
                        ready = []
                else:
                    if pending:
                        time.sleep(_TICK)
                    ready = []
                for conn in ready:
                    worker = next(
                        (w for w in workers if w.conn is conn), None
                    )
                    if worker is None:
                        continue
                    done = self._collect(worker, pending, results, manifest,
                                         on_record)
                    if (
                        done is not None
                        and self.fail_fast
                        and done.status in (STATUS_FAILED, STATUS_TIMEOUT)
                    ):
                        abort = True
        finally:
            for worker in workers:
                if worker.busy or worker.proc.is_alive():
                    worker.stop()
            for signum, previous in installed:
                try:
                    signal.signal(signum, previous)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        if self._interrupted:
            # Workers reaped, records landed, manifest flushed — now
            # surface the interrupt the way callers expect.
            raise KeyboardInterrupt

    def _watchdog_pass(
        self, workers: list[_Worker], pending: list[_TaskState], now: float
    ) -> None:
        """Reap dead or hung workers; requeue or finalize their tasks."""
        for worker in list(workers):
            if not worker.busy:
                if not worker.proc.is_alive():
                    workers.remove(worker)
                continue
            dead = not worker.proc.is_alive()
            hung = (time.time() - worker.beat.value) > self.heartbeat_timeout
            over_deadline = (
                worker.deadline is not None and now > worker.deadline
            )
            if not (dead or hung or over_deadline):
                continue
            state = worker.state
            worker.state = None
            if dead:
                code = worker.proc.exitcode
                self._c_crashed.incr()
                state.last_status = STATUS_FAILED
                state.last_error = f"worker crashed (exit code {code})"
                state.last_detail = (
                    "worker process died mid-task; killed by signal "
                    f"{-code}" if isinstance(code, int) and code < 0
                    else f"worker process exited with code {code} mid-task"
                )
            else:
                self._c_hung.incr()
                why = ("stopped heartbeating" if hung
                       else "exceeded the watchdog deadline")
                state.last_status = STATUS_TIMEOUT
                state.last_error = f"worker {why}; killed by watchdog"
                state.last_detail = ""
            if state.span is not obs.NULL_SPAN:
                # A reaped worker never ships its own attempt span, so
                # the coordinator synthesises one from its clocks — the
                # parent task span still closes with a full attempt
                # history even when the child process is gone.
                obs.start_span(
                    "task.attempt", kind="task.attempt", parent=state.span,
                    start_at=worker.assigned_wall or time.time(),
                    attrs={"task": state.task.name,
                           "attempt": state.attempts,
                           "worker_pid": worker.proc.pid,
                           "synthesized": True,
                           "error": state.last_error},
                ).end(state.last_status)
            worker.kill()
            workers.remove(worker)
            state.eligible_at = now + self._retry_delay(state.attempts)
            pending.append(state)

    def _assign(
        self,
        ctx,
        workers: list[_Worker],
        pending: list[_TaskState],
        results: dict[str, TaskRecord],
        manifest: dict[str, TaskRecord],
        on_record: Callable[[TaskRecord], None] | None,
        now: float,
    ) -> None:
        """Hand eligible tasks to idle workers, spawning up to ``jobs``."""
        if self._stop_requested:
            return  # draining: nothing new reaches a worker
        for state in list(pending):
            # Retries exhausted -> terminal failed/timeout record.
            if state.attempts > state.retries:
                pending.remove(state)
                record = self._finalize_state(state)
                results[state.task.name] = record
                self._land(record, manifest, on_record,
                           persist=True, task=state.task)
                continue
            if state.eligible_at > now:
                continue
            worker = next(
                (w for w in workers if not w.busy and w.proc.is_alive()), None
            )
            if worker is None:
                if len(workers) < self.jobs:
                    worker = _Worker(ctx)
                    self._c_spawned.incr()
                    workers.append(worker)
                else:
                    break  # every slot busy; wait for a completion
            pending.remove(state)
            if state.started is None:
                state.started = now
            if state.started_wall is None:
                # First assignment ends the queue-wait phase.
                state.started_wall = time.time()
                if state.span is not obs.NULL_SPAN:
                    obs.start_span(
                        "task.queue", kind="task.queue", parent=state.span,
                        start_at=state.queued_wall,
                        attrs={"task": state.task.name},
                    ).end(STATUS_OK, at=state.started_wall)
            kwargs = state.attempt_kwargs(self.reseed_base)
            state.attempts += 1
            span_ctx = None
            if state.span is not obs.NULL_SPAN:
                span_ctx = dict(state.span.context.to_dict(),
                                attempt=state.attempts)
            message = (state.task.name, state.task.fn, kwargs, state.timeout,
                       span_ctx)
            try:
                worker.conn.send(message)
            except (pickle.PicklingError, AttributeError, TypeError):
                # Unpicklable task (lambda/closure): degrade gracefully
                # by running it inline in the coordinator.
                self._c_inline.incr()
                attempt_span = obs.start_span(
                    "task.attempt", kind="task.attempt",
                    parent=state.span if span_ctx is not None else None,
                    attrs={"task": state.task.name,
                           "attempt": state.attempts,
                           "pid": os.getpid(), "inline": True},
                )
                with attempt_span:
                    raw = execute_task(
                        state.task.name, state.task.fn, kwargs, state.timeout
                    )
                    attempt_span.outcome = raw["status"]
                self._absorb_attempt(state, raw, pending, results, manifest,
                                     on_record)
                continue
            except (OSError, ValueError, BrokenPipeError):
                # The worker died between the liveness check and the
                # send: undo the attempt, requeue, and reap the corpse.
                state.attempts -= 1
                pending.append(state)
                worker.kill()
                workers.remove(worker)
                continue
            worker.state = state
            worker.assigned_wall = time.time()
            worker.deadline = (
                now + state.timeout * _DEADLINE_SLACK + _DEADLINE_GRACE
                if state.timeout is not None and state.timeout > 0 else None
            )

    def _collect(
        self,
        worker: _Worker,
        pending: list[_TaskState],
        results: dict[str, TaskRecord],
        manifest: dict[str, TaskRecord],
        on_record: Callable[[TaskRecord], None] | None,
    ) -> TaskRecord | None:
        """Receive one worker result; returns the record if terminal."""
        state = worker.state
        try:
            raw = worker.conn.recv()
        except (EOFError, OSError):
            # Worker died with the result half-sent; treat as a crash.
            # The watchdog pass will reap the process itself.
            return None
        worker.state = None
        worker.deadline = None
        worker.assigned_wall = None
        if state is None:
            return None
        worker_spans = raw.pop("spans", None)
        if worker_spans:
            recorder = obs.active()
            if recorder is not None:
                recorder.adopt(worker_spans)
        result_bytes = raw.pop("result_bytes", None)
        if result_bytes is not None:
            try:
                raw["result"] = pickle.loads(result_bytes)
            except Exception as error:  # noqa: BLE001 - degrade to failure
                raw["result"] = None
                if raw.get("status") == STATUS_OK:
                    raw["status"] = STATUS_FAILED
                    raw["error"] = (
                        f"result not decodable: {type(error).__name__}"
                    )
        else:
            raw.setdefault("result", None)
        return self._absorb_attempt(state, raw, pending, results, manifest,
                                    on_record)

    def _absorb_attempt(
        self,
        state: _TaskState,
        raw: dict[str, Any],
        pending: list[_TaskState],
        results: dict[str, TaskRecord],
        manifest: dict[str, TaskRecord],
        on_record: Callable[[TaskRecord], None] | None,
    ) -> TaskRecord | None:
        """Fold one attempt outcome into the task state; finalize if done."""
        state.last_status = raw["status"]
        state.last_error = raw.get("error", "")
        state.last_detail = raw.get("detail", "")
        if raw["status"] == STATUS_OK:
            record = self._finalize_state(state, result=raw.get("result"))
            results[state.task.name] = record
            self._land(record, manifest, on_record,
                       persist=True, task=state.task)
            return record
        if state.attempts > state.retries or self._stop_requested:
            # Retries exhausted — or a drain is in progress, in which
            # case the task keeps its last real outcome instead of
            # burning retry budget the shutdown will cancel anyway.
            record = self._finalize_state(state)
            results[state.task.name] = record
            self._land(record, manifest, on_record,
                       persist=True, task=state.task)
            return record
        state.eligible_at = time.monotonic() + self._retry_delay(state.attempts)
        pending.append(state)
        return None

    def _finalize_state(
        self, state: _TaskState, *, result: Any = None
    ) -> TaskRecord:
        elapsed = (
            time.monotonic() - state.started
            if state.started is not None else 0.0
        )
        record = TaskRecord(
            name=state.task.name,
            status=state.last_status,
            attempts=state.attempts,
            elapsed=elapsed,
            error=state.last_error if state.last_status != STATUS_OK else "",
            # detail survives even on success: it carries degradation
            # notes (e.g. an untransferable result object).
            detail=state.last_detail,
            seed=state.seed,
            result=result,
        )
        record.queued_at = state.queued_wall
        record.started_at = state.started_wall or 0.0
        record.finished_at = time.time()
        if state.span is not obs.NULL_SPAN:
            state.span.set_many({
                "attempts": state.attempts,
                "queue_wait_s": round(record.queue_wait, 6),
            })
            if record.error:
                state.span.set("error", record.error[:200])
            state.span.end(record.status)
        return record
