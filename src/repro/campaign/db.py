"""Persistent sqlite campaign DB: run provenance, payloads, job journal.

One ``runs`` row per *executed* task attempt-chain: config hash, seed,
git rev, terminal status, timing, and (for successes) the result payload
in the deterministic :mod:`repro.campaign.payload` encoding.  The cache
contract is strict — a row is served only when config hash *and* git
revision match and the stored payload decodes — so a code change, a
kwarg change, or a corrupted row all degrade to a cache miss, never to
a stale result.

The ``jobs`` table is the leakcheck service's **write-ahead job
journal** (:mod:`repro.service`): a job is journalled *before* the
server acknowledges it, every state transition is committed as it
happens, and on startup any row still ``queued``/``running`` is
re-queued — so an accepted job survives a ``kill -9`` of the server.

The campaign coordinator remains the only writer of ``runs`` rows
*within one process*, but the service introduces benign cross-process
and cross-connection concurrency (journal writes on the server
connection while per-job engines record runs on their own).  WAL mode
plus an explicit ``busy_timeout`` and a retry-on-``SQLITE_BUSY``
wrapper keep those writers from ever surfacing a transient lock as a
crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.campaign.payload import PayloadError, encode_payload

SCHEMA_VERSION = 3

#: Transient-lock retry policy: attempts beyond the first, and the base
#: of the exponential sleep between them.  Combined with sqlite's own
#: ``busy_timeout`` (which blocks inside the C library first), a writer
#: only fails once a lock has been held for several full seconds.
_BUSY_RETRIES = 5
_BUSY_BACKOFF_S = 0.05

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    config_hash TEXT NOT NULL,
    git_rev TEXT NOT NULL,
    name TEXT NOT NULL,
    seed INTEGER,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    elapsed REAL NOT NULL DEFAULT 0.0,
    error TEXT NOT NULL DEFAULT '',
    detail TEXT NOT NULL DEFAULT '',
    payload TEXT,
    created REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_key ON runs (config_hash, git_rev, status);
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    spec TEXT NOT NULL,
    state TEXT NOT NULL,
    submitted REAL NOT NULL,
    updated REAL NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    resumed INTEGER NOT NULL DEFAULT 0,
    error TEXT NOT NULL DEFAULT '',
    result TEXT,
    trace TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state);
CREATE TABLE IF NOT EXISTS spans (
    span_id TEXT PRIMARY KEY,
    trace_id TEXT NOT NULL,
    parent_id TEXT,
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    start REAL NOT NULL,
    end REAL NOT NULL,
    outcome TEXT NOT NULL,
    pid INTEGER NOT NULL DEFAULT 0,
    attrs TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_spans_trace ON spans (trace_id, start);
"""


def _is_busy_error(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message


def config_hash(name: str, fn: Callable[..., Any], kwargs: dict[str, Any]) -> str:
    """Stable identity of one task configuration.

    Hashes the task name, the function's import path, and the kwargs in
    the canonical payload encoding, so the key survives process restarts
    and is independent of shard assignment or execution order.  Kwarg
    values the payload codec cannot encode fall back to ``repr`` — still
    deterministic for the plain-Python values task specs carry.
    """
    parts = [name, f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"]
    for key in sorted(kwargs):
        try:
            encoded = encode_payload(kwargs[key])
        except PayloadError:
            encoded = repr(kwargs[key])
        parts.append(f"{key}={encoded}")
    digest = hashlib.blake2b("\x1f".join(parts).encode(), digest_size=16)
    return digest.hexdigest()


@dataclass(frozen=True)
class RunRow:
    """One persisted campaign run."""

    config_hash: str
    git_rev: str
    name: str
    seed: int | None
    status: str
    attempts: int
    elapsed: float
    error: str
    detail: str
    payload: str | None
    created: float


@dataclass(frozen=True)
class JobRow:
    """One journalled service job (see :mod:`repro.service`)."""

    id: str
    kind: str
    spec: str
    state: str
    submitted: float
    updated: float
    attempts: int
    resumed: int
    error: str
    result: str | None
    trace: str = ""


_JOB_COLUMNS = (
    "id, kind, spec, state, submitted, updated, attempts, resumed,"
    " error, result, trace"
)


class CampaignDB:
    """Append-mostly store of campaign runs keyed by (config hash, git rev)."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        busy_timeout: float = 5.0,
        check_same_thread: bool = True,
    ) -> None:
        if busy_timeout < 0:
            raise ValueError("busy_timeout must be non-negative")
        self.path = os.fspath(path)
        self.busy_timeout = busy_timeout
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, timeout=busy_timeout,
            check_same_thread=check_same_thread,
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        # Block inside sqlite itself while another connection commits;
        # the _execute/_commit retry loop backs this up for the (rare)
        # cases sqlite still surfaces SQLITE_BUSY, e.g. a competing
        # writer upgrading to an exclusive lock.
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        # WAL + NORMAL keeps commits durable across process crashes
        # (kill -9) while skipping the per-commit fsync; an OS-level
        # power loss may drop the last few commits, which the service
        # treats the same as jobs that never arrived.
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._commit()

    def _migrate(self) -> None:
        """Bring a pre-v3 DB up to date in place.

        v3 added ``jobs.trace`` (the fleet-tracing trace id a resumed
        job must keep) and the ``spans`` table; ``executescript`` above
        already created the latter via ``IF NOT EXISTS``.
        """
        columns = {
            row[1] for row in self._execute("PRAGMA table_info(jobs)")
        }
        if "trace" not in columns:
            self._execute(
                "ALTER TABLE jobs ADD COLUMN trace TEXT NOT NULL DEFAULT ''"
            )

    # -- busy-retry plumbing ----------------------------------------------

    def _execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """``conn.execute`` that retries transient SQLITE_BUSY errors."""
        return self._with_busy_retry(lambda: self._conn.execute(sql, params))

    def _commit(self) -> None:
        self._with_busy_retry(self._conn.commit)

    def _with_busy_retry(self, op: Callable[[], Any]) -> Any:
        for attempt in range(_BUSY_RETRIES + 1):
            try:
                return op()
            except sqlite3.OperationalError as error:
                if not _is_busy_error(error) or attempt == _BUSY_RETRIES:
                    raise
                time.sleep(_BUSY_BACKOFF_S * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    # -- writes ------------------------------------------------------------

    def record_run(
        self,
        *,
        config_hash: str,
        git_rev: str,
        name: str,
        seed: int | None,
        status: str,
        attempts: int,
        elapsed: float,
        error: str = "",
        detail: str = "",
        payload: str | None = None,
    ) -> None:
        """Persist one executed task's terminal outcome."""
        self._execute(
            "INSERT INTO runs (config_hash, git_rev, name, seed, status,"
            " attempts, elapsed, error, detail, payload, created)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                config_hash, git_rev, name, seed, status,
                attempts, elapsed, error, detail, payload, time.time(),
            ),
        )
        self._commit()

    # -- reads -------------------------------------------------------------

    def lookup(self, config_hash: str, git_rev: str) -> RunRow | None:
        """Latest successful run with a payload for this exact config + rev."""
        cur = self._execute(
            "SELECT config_hash, git_rev, name, seed, status, attempts,"
            " elapsed, error, detail, payload, created FROM runs"
            " WHERE config_hash = ? AND git_rev = ? AND status = 'ok'"
            " AND payload IS NOT NULL ORDER BY id DESC LIMIT 1",
            (config_hash, git_rev),
        )
        row = cur.fetchone()
        return RunRow(*row) if row is not None else None

    def runs(self, *, name: str | None = None) -> list[RunRow]:
        """All recorded runs (optionally for one task name), oldest first."""
        query = (
            "SELECT config_hash, git_rev, name, seed, status, attempts,"
            " elapsed, error, detail, payload, created FROM runs"
        )
        params: tuple = ()
        if name is not None:
            query += " WHERE name = ?"
            params = (name,)
        return [RunRow(*row) for row in self._execute(query + " ORDER BY id", params)]

    def counts(self) -> dict[str, int]:
        """``{status: rows}`` across the whole DB."""
        return dict(
            self._execute("SELECT status, COUNT(*) FROM runs GROUP BY status")
        )

    def __len__(self) -> int:
        (count,) = self._execute("SELECT COUNT(*) FROM runs").fetchone()
        return count

    # -- job journal (write-ahead log for the leakcheck service) ----------

    def journal_put(
        self,
        *,
        job_id: str,
        kind: str,
        spec: str,
        state: str,
        resumed: int = 0,
        error: str = "",
        result: str | None = None,
        trace: str = "",
    ) -> None:
        """Journal a newly accepted job *before* acknowledging it."""
        now = time.time()
        self._execute(
            f"INSERT INTO jobs ({_JOB_COLUMNS})"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (job_id, kind, spec, state, now, now, 0, resumed, error, result,
             trace),
        )
        self._commit()

    def journal_update(
        self,
        job_id: str,
        *,
        state: str,
        attempts: int | None = None,
        resumed: int | None = None,
        error: str | None = None,
        result: str | None = None,
        trace: str | None = None,
    ) -> None:
        """Commit one job state transition (and optional outcome fields)."""
        sets = ["state = ?", "updated = ?"]
        params: list[Any] = [state, time.time()]
        for column, value in (
            ("attempts", attempts), ("resumed", resumed),
            ("error", error), ("result", result), ("trace", trace),
        ):
            if value is not None:
                sets.append(f"{column} = ?")
                params.append(value)
        params.append(job_id)
        self._execute(
            f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?", tuple(params)
        )
        self._commit()

    def journal_get(self, job_id: str) -> JobRow | None:
        cur = self._execute(
            f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
        )
        row = cur.fetchone()
        return JobRow(*row) if row is not None else None

    def journal_jobs(self, *, states: tuple[str, ...] | None = None) -> list[JobRow]:
        """Journalled jobs, oldest first (optionally filtered by state)."""
        query = f"SELECT {_JOB_COLUMNS} FROM jobs"
        params: tuple = ()
        if states:
            marks = ", ".join("?" for _ in states)
            query += f" WHERE state IN ({marks})"
            params = tuple(states)
        return [
            JobRow(*row)
            for row in self._execute(query + " ORDER BY submitted, id", params)
        ]

    def journal_pending(self) -> list[JobRow]:
        """Jobs a restarted service must re-queue: queued or running."""
        return self.journal_jobs(states=("queued", "running"))

    # -- span persistence (fleet tracing, schema v1 in repro.obs) ---------

    def span_put_many(self, spans: list[dict[str, Any]]) -> int:
        """Persist finished span dicts; idempotent on span id."""
        count = 0
        for span in spans:
            try:
                row = (
                    str(span["span"]), str(span["trace"]), span.get("parent"),
                    str(span["name"]), str(span.get("kind", span["name"])),
                    float(span["start"]), float(span["end"]),
                    str(span.get("outcome", "")), int(span.get("pid", 0)),
                    json.dumps(span.get("attrs") or {}, sort_keys=True),
                )
            except (KeyError, TypeError, ValueError):
                continue  # malformed span: skip, never poison the batch
            self._execute(
                "INSERT OR REPLACE INTO spans (span_id, trace_id, parent_id,"
                " name, kind, start, end, outcome, pid, attrs)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                row,
            )
            count += 1
        if count:
            self._commit()
        return count

    def spans(self, trace_id: str | None = None,
              *, limit: int = 0) -> list[dict[str, Any]]:
        """Stored spans as schema-v1 dicts, oldest first."""
        query = ("SELECT span_id, trace_id, parent_id, name, kind, start,"
                 " end, outcome, pid, attrs FROM spans")
        params: tuple = ()
        if trace_id is not None:
            query += " WHERE trace_id = ?"
            params = (trace_id,)
        query += " ORDER BY start, span_id"
        if limit:
            query += f" LIMIT {int(limit)}"
        out = []
        for row in self._execute(query, params):
            try:
                attrs = json.loads(row[9]) if row[9] else {}
            except ValueError:
                attrs = {}
            out.append({
                "v": 1, "span": row[0], "trace": row[1], "parent": row[2],
                "name": row[3], "kind": row[4], "start": row[5],
                "end": row[6], "outcome": row[7], "pid": row[8],
                "attrs": attrs,
            })
        return out

    def span_traces(self) -> list[str]:
        """Distinct trace ids with stored spans, oldest first."""
        return [
            row[0] for row in self._execute(
                "SELECT trace_id, MIN(start) AS t0 FROM spans"
                " GROUP BY trace_id ORDER BY t0"
            )
        ]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
