"""Persistent sqlite campaign DB: every run's provenance and payload.

One row per *executed* task attempt-chain: config hash, seed, git rev,
terminal status, timing, and (for successes) the result payload in the
deterministic :mod:`repro.campaign.payload` encoding.  The cache
contract is strict — a row is served only when config hash *and* git
revision match and the stored payload decodes — so a code change, a
kwarg change, or a corrupted row all degrade to a cache miss, never to
a stale result.

Only the campaign coordinator touches the DB (workers ship results back
over pipes), so there is no cross-process write contention; WAL mode
still keeps concurrent read-only inspection (``sqlite3 campaign.db``)
safe while a campaign is in flight.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.campaign.payload import PayloadError, encode_payload

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    config_hash TEXT NOT NULL,
    git_rev TEXT NOT NULL,
    name TEXT NOT NULL,
    seed INTEGER,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    elapsed REAL NOT NULL DEFAULT 0.0,
    error TEXT NOT NULL DEFAULT '',
    detail TEXT NOT NULL DEFAULT '',
    payload TEXT,
    created REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_key ON runs (config_hash, git_rev, status);
"""


def config_hash(name: str, fn: Callable[..., Any], kwargs: dict[str, Any]) -> str:
    """Stable identity of one task configuration.

    Hashes the task name, the function's import path, and the kwargs in
    the canonical payload encoding, so the key survives process restarts
    and is independent of shard assignment or execution order.  Kwarg
    values the payload codec cannot encode fall back to ``repr`` — still
    deterministic for the plain-Python values task specs carry.
    """
    parts = [name, f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"]
    for key in sorted(kwargs):
        try:
            encoded = encode_payload(kwargs[key])
        except PayloadError:
            encoded = repr(kwargs[key])
        parts.append(f"{key}={encoded}")
    digest = hashlib.blake2b("\x1f".join(parts).encode(), digest_size=16)
    return digest.hexdigest()


@dataclass(frozen=True)
class RunRow:
    """One persisted campaign run."""

    config_hash: str
    git_rev: str
    name: str
    seed: int | None
    status: str
    attempts: int
    elapsed: float
    error: str
    detail: str
    payload: str | None
    created: float


class CampaignDB:
    """Append-mostly store of campaign runs keyed by (config hash, git rev)."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()

    # -- writes ------------------------------------------------------------

    def record_run(
        self,
        *,
        config_hash: str,
        git_rev: str,
        name: str,
        seed: int | None,
        status: str,
        attempts: int,
        elapsed: float,
        error: str = "",
        detail: str = "",
        payload: str | None = None,
    ) -> None:
        """Persist one executed task's terminal outcome."""
        self._conn.execute(
            "INSERT INTO runs (config_hash, git_rev, name, seed, status,"
            " attempts, elapsed, error, detail, payload, created)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                config_hash, git_rev, name, seed, status,
                attempts, elapsed, error, detail, payload, time.time(),
            ),
        )
        self._conn.commit()

    # -- reads -------------------------------------------------------------

    def lookup(self, config_hash: str, git_rev: str) -> RunRow | None:
        """Latest successful run with a payload for this exact config + rev."""
        cur = self._conn.execute(
            "SELECT config_hash, git_rev, name, seed, status, attempts,"
            " elapsed, error, detail, payload, created FROM runs"
            " WHERE config_hash = ? AND git_rev = ? AND status = 'ok'"
            " AND payload IS NOT NULL ORDER BY id DESC LIMIT 1",
            (config_hash, git_rev),
        )
        row = cur.fetchone()
        return RunRow(*row) if row is not None else None

    def runs(self, *, name: str | None = None) -> list[RunRow]:
        """All recorded runs (optionally for one task name), oldest first."""
        query = (
            "SELECT config_hash, git_rev, name, seed, status, attempts,"
            " elapsed, error, detail, payload, created FROM runs"
        )
        params: tuple = ()
        if name is not None:
            query += " WHERE name = ?"
            params = (name,)
        return [RunRow(*row) for row in self._conn.execute(query + " ORDER BY id", params)]

    def counts(self) -> dict[str, int]:
        """``{status: rows}`` across the whole DB."""
        return dict(
            self._conn.execute("SELECT status, COUNT(*) FROM runs GROUP BY status")
        )

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()
        return count

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
