"""Campaign worker process: execute tasks, heartbeat, report back.

Each worker is one OS process running :func:`worker_main`: it receives
``(name, fn, kwargs, timeout, span_ctx)`` messages over its pipe (the
fifth element carries the parent span identity when fleet tracing is on
— see :mod:`repro.obs` — or ``None``), executes them
with the runner's SIGALRM-backed timeout (workers run tasks on their
main thread, so the alarm path — which interrupts even tight
pure-Python loops — is always available), and sends a structured result
record back.  A daemon heartbeat thread stamps a shared timestamp a few
times per second; the coordinator's watchdog treats a stale stamp or a
dead process as a crashed worker and retries the task elsewhere.

Results are pre-pickled inside the worker so an unpicklable result
object degrades to a structured note instead of corrupting the pipe.

Test hook: setting ``REPRO_CAMPAIGN_TEST_CRASH`` to ``NAME=MARKER``
makes the first worker to pick up task ``NAME`` die with ``os._exit``
after creating the ``MARKER`` file (subsequent attempts run normally).
This simulates a segfault/OOM kill deterministically and is used by the
crash-isolation tests and CI; it has no effect when the variable is
unset.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from multiprocessing.connection import Connection
from typing import Any

from repro import obs
from repro.runner.core import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    TaskTimeout,
    _call_with_timeout,
)

#: Seconds between heartbeat stamps.
HEARTBEAT_INTERVAL = 0.2

#: Environment variable naming a task to hard-kill once (``NAME=MARKER``).
TEST_CRASH_ENV = "REPRO_CAMPAIGN_TEST_CRASH"

#: Exit code of the injected test crash, distinguishable from real faults.
TEST_CRASH_EXIT = 86


def maybe_test_crash(task_name: str) -> None:
    """Die abruptly if the test-crash hook targets this task (once)."""
    hook = os.environ.get(TEST_CRASH_ENV, "")
    target, sep, marker = hook.partition("=")
    if not sep or target != task_name or not marker:
        return
    if os.path.exists(marker):
        return  # already crashed once; let the retry succeed
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write(f"crashed task {task_name}\n")
    os._exit(TEST_CRASH_EXIT)


def _heartbeat_loop(beat, stop: threading.Event) -> None:
    while not stop.is_set():
        beat.value = time.time()
        stop.wait(HEARTBEAT_INTERVAL)


def execute_task(
    name: str, fn: Any, kwargs: dict[str, Any], timeout: float | None
) -> dict[str, Any]:
    """Run one task attempt and summarise it as a plain record dict.

    Shared by the worker loop and the coordinator's inline fallback so
    both paths classify outcomes (ok / timeout / failed) identically.
    """
    record: dict[str, Any] = {
        "name": name,
        "status": STATUS_FAILED,
        "error": "",
        "detail": "",
        "elapsed": 0.0,
        "result": None,
    }
    started = time.monotonic()
    try:
        record["result"] = _call_with_timeout(fn, dict(kwargs), timeout)
        record["status"] = STATUS_OK
    except TaskTimeout as error:
        record["status"] = STATUS_TIMEOUT
        record["error"] = str(error)
    except KeyboardInterrupt:
        raise
    except BaseException as error:  # crash isolation: report, don't die
        record["error"] = f"{type(error).__name__}: {error}"
        record["detail"] = "".join(traceback.format_exception(error))[-2000:]
    record["elapsed"] = time.monotonic() - started
    return record


def execute_traced(
    name: str, fn: Any, kwargs: dict[str, Any], timeout: float | None,
    span_ctx: dict[str, Any] | None,
) -> dict[str, Any]:
    """Run one attempt inside a worker-local span recorder.

    The parent span lives in the coordinator process; ``span_ctx``
    carries its ``{"trace", "span", "attempt"}`` identity across the
    pipe.  Finished span dicts ride back on ``record["spans"]`` and are
    adopted by the coordinator's recorder — a crashed worker simply
    never ships them, and the coordinator synthesises the attempt span
    from its own clocks instead.
    """
    parent = obs.SpanContext.from_dict(span_ctx)
    if parent is None:
        return execute_task(name, fn, kwargs, timeout)
    recorder = obs.SpanRecorder()
    obs.enable(recorder)
    try:
        span = recorder.start_span(
            "task.attempt", kind="task.attempt", parent=parent,
            attrs={"task": name,
                   "attempt": int((span_ctx or {}).get("attempt", 1)),
                   "pid": os.getpid()},
        )
        with span:
            record = execute_task(name, fn, kwargs, timeout)
            span.outcome = record["status"]
            if record["error"]:
                span.set("error", record["error"][:200])
    finally:
        obs.disable()
    record["spans"] = recorder.drain()
    return record


def worker_main(conn: Connection, beat) -> None:
    """Worker process entry point: loop over tasks until told to stop."""
    # The worker was forked mid-run: drop any recorder (and buffered
    # spans) inherited from the coordinator so nothing is double-counted.
    obs.disable()
    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop, args=(beat, stop), daemon=True,
        name="campaign-heartbeat",
    ).start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:  # orderly shutdown
                break
            name, fn, kwargs, timeout, span_ctx = message
            maybe_test_crash(name)
            record = execute_traced(name, fn, kwargs, timeout, span_ctx)
            result = record.pop("result")
            try:
                record["result_bytes"] = pickle.dumps(result)
            except Exception as error:  # noqa: BLE001 - degrade, don't crash
                record["result_bytes"] = None
                note = f"result not transferable: {type(error).__name__}: {error}"
                record["detail"] = (record["detail"] + "\n" + note).strip()
            conn.send(record)
    finally:
        stop.set()
        conn.close()
