"""Cycle attribution: where every simulated access's latency went.

A :class:`CycleAttributor` attaches to a :class:`~repro.proc.processor.
SecureProcessor` via ``proc.attach_profiler(attributor)``.  While attached,
every software-visible operation (read, write, write-through, flush,
drain fence) reports a per-component latency breakdown built at the points
where the simulator composes latencies — the data-cache hierarchy, the MEE
read path and the memory controller — so the attribution is exact by
construction rather than reconstructed from trace timestamps.

**Conservation guarantee.** For every recorded access,
``sum(parts.values()) == latency`` (the access's pre-jitter end-to-end
latency).  The attributor enforces this at record time and raises
:class:`AttributionError` on violation, so the invariant is load-bearing:
a component model change that leaks or double-counts cycles fails loudly.

Overlapped work is handled explicitly: the MEE fetches data and metadata
concurrently and the slower side defines the critical path.  Only the
critical side's components are attributed; the hidden side's cycles are
tallied separately as *shadowed* so reports can still show them (they are
real DRAM work, just not visible in the end-to-end latency).

Component keys are dotted paths (``meta.tree.l2.fetch``, ``dram.queue``)
that double as flamegraph frames in the collapsed-stack export.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.proc.paths import AccessPath


class AttributionError(ValueError):
    """The conservation invariant was violated for one access."""


@dataclass(frozen=True)
class AccessRecord:
    """One attributed access (kept only when ``keep_records=True``)."""

    op: str
    path: str | None
    core: int
    addr: int | None
    cycle: int
    latency: int
    parts: Mapping[str, int]
    shadowed: Mapping[str, int]


@dataclass
class PathProfile:
    """Aggregated attribution for one (operation, access-path) bucket."""

    op: str
    path: str | None
    count: int = 0
    cycles: int = 0
    parts: dict[str, int] = field(default_factory=dict)
    shadowed: dict[str, int] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        return self.cycles / self.count if self.count else 0.0

    def _absorb(self, latency: int, parts: Mapping[str, int],
                shadowed: Mapping[str, int]) -> None:
        self.count += 1
        self.cycles += latency
        for key, value in parts.items():
            self.parts[key] = self.parts.get(key, 0) + value
        for key, value in shadowed.items():
            self.shadowed[key] = self.shadowed.get(key, 0) + value


class CycleAttributor:
    """Aggregates per-access latency breakdowns with exact conservation.

    ``keep_records=True`` additionally retains the most recent
    ``record_capacity`` individual :class:`AccessRecord` objects (a bounded
    list, oldest dropped first) for fine-grained inspection.
    """

    #: Component-graph slot this instrument occupies (``repro.core``).
    instrument_slot = "profiler"

    def __init__(
        self, *, keep_records: bool = False, record_capacity: int = 1 << 16
    ) -> None:
        if record_capacity <= 0:
            raise ValueError("record capacity must be positive")
        self.keep_records = keep_records
        self.record_capacity = record_capacity
        self.records: list[AccessRecord] = []
        self.dropped_records = 0
        self.accesses = 0
        self.cycles = 0
        self._profiles: dict[tuple[str, str | None], PathProfile] = {}

    # -- recording (called by the processor) -------------------------------

    def on_access(
        self,
        *,
        op: str,
        path: AccessPath | None,
        core: int,
        addr: int | None,
        cycle: int,
        latency: int,
        parts: Mapping[str, int],
        shadowed: Mapping[str, int] | None = None,
    ) -> None:
        """Record one attributed access; enforces conservation."""
        attributed = sum(parts.values())
        if attributed != latency:
            raise AttributionError(
                f"{op} at cycle {cycle}: attributed {attributed} cycles "
                f"!= end-to-end {latency} (parts={dict(parts)})"
            )
        shadowed = shadowed or {}
        path_name = path.name if path is not None else None
        self.accesses += 1
        self.cycles += latency
        profile = self._profiles.get((op, path_name))
        if profile is None:
            profile = PathProfile(op=op, path=path_name)
            self._profiles[(op, path_name)] = profile
        profile._absorb(latency, parts, shadowed)
        if self.keep_records:
            if len(self.records) >= self.record_capacity:
                del self.records[0]
                self.dropped_records += 1
            self.records.append(
                AccessRecord(
                    op=op, path=path_name, core=core, addr=addr, cycle=cycle,
                    latency=latency, parts=dict(parts), shadowed=dict(shadowed),
                )
            )

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0
        self.accesses = 0
        self.cycles = 0
        self._profiles.clear()

    # -- aggregate views ---------------------------------------------------

    def profiles(self) -> list[PathProfile]:
        """Per-(op, path) aggregates, busiest (most cycles) first."""
        return sorted(
            self._profiles.values(), key=lambda p: p.cycles, reverse=True
        )

    def component_totals(self) -> dict[str, int]:
        """Attributed cycles per component, summed over all accesses."""
        totals: dict[str, int] = {}
        for profile in self._profiles.values():
            for key, value in profile.parts.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def verify(self) -> None:
        """Re-check conservation over the aggregates; raises on violation."""
        for profile in self._profiles.values():
            attributed = sum(profile.parts.values())
            if attributed != profile.cycles:
                raise AttributionError(
                    f"profile ({profile.op}, {profile.path}): aggregated "
                    f"{attributed} != end-to-end {profile.cycles}"
                )
        if sum(p.cycles for p in self._profiles.values()) != self.cycles:
            raise AttributionError("profile cycle totals drifted from global")

    # -- reports -----------------------------------------------------------

    def report(self, *, min_share: float = 0.0) -> str:
        """Hierarchical text report: per path, a component tree with shares.

        ``min_share`` hides components below that fraction of the bucket's
        cycles (0 shows everything).
        """
        lines = [
            f"cycle attribution: {self.accesses} accesses, "
            f"{self.cycles} cycles (conserved)"
        ]
        for profile in self.profiles():
            label = profile.path or "-"
            if profile.path:
                label = f"{label} ({AccessPath[profile.path].paper_name})"
            lines.append(
                f"\n{profile.op} / {label}: count={profile.count} "
                f"mean={profile.mean_latency:.1f} total={profile.cycles}"
            )
            lines.extend(
                _render_tree(profile.parts, profile.cycles, min_share)
            )
            hidden = sum(profile.shadowed.values())
            if hidden:
                pieces = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(profile.shadowed.items())
                )
                lines.append(f"    [shadowed, off critical path: {pieces}]")
        return "\n".join(lines)

    # -- flamegraph export -------------------------------------------------

    def collapsed_stacks(self, *, include_shadowed: bool = False) -> list[str]:
        """Collapsed-stack lines (``frame;frame;... cycles``).

        The format is what ``flamegraph.pl`` / speedscope / inferno
        consume: one line per unique stack, semicolon-separated frames,
        trailing sample count (here: cycles).  Stacks are
        ``op;<path>;component...`` with dotted components split into
        frames, so a tree walk shows up as nested ``meta → tree → l2``
        frames whose widths are the attributed cycles.
        """
        stacks: dict[str, int] = {}
        for profile in self._profiles.values():
            base = profile.op if profile.path is None else (
                f"{profile.op};{profile.path}"
            )
            for key, value in profile.parts.items():
                frames = f"{base};" + ";".join(key.split("."))
                stacks[frames] = stacks.get(frames, 0) + value
            if include_shadowed:
                for key, value in profile.shadowed.items():
                    frames = f"{base};[shadowed];" + ";".join(key.split("."))
                    stacks[frames] = stacks.get(frames, 0) + value
        return [f"{frames} {value}" for frames, value in sorted(stacks.items())]

    def write_collapsed(
        self, path: str | pathlib.Path, *, include_shadowed: bool = False
    ) -> int:
        """Write the collapsed-stack export; returns the number of lines."""
        lines = self.collapsed_stacks(include_shadowed=include_shadowed)
        pathlib.Path(path).write_text("\n".join(lines) + "\n")
        return len(lines)


def _render_tree(
    parts: Mapping[str, int], total: int, min_share: float
) -> list[str]:
    """Render dotted component keys as an indented tree with shares."""
    # Build the nested structure: every prefix accumulates its subtree sum.
    tree: dict[str, dict] = {}
    for key, value in parts.items():
        node = tree
        frames = key.split(".")
        for frame in frames:
            entry = node.setdefault(frame, {"cycles": 0, "children": {}})
            entry["cycles"] += value
            node = entry["children"]
    lines: list[str] = []

    def emit(node: dict[str, dict], depth: int) -> None:
        ordered = sorted(
            node.items(), key=lambda item: item[1]["cycles"], reverse=True
        )
        for frame, entry in ordered:
            share = entry["cycles"] / total if total else 0.0
            if share < min_share:
                continue
            lines.append(
                f"    {'  ' * depth}{frame:<{24 - 2 * depth}} "
                f"{entry['cycles']:>10}  {share:6.1%}"
            )
            emit(entry["children"], depth + 1)

    emit(tree, 0)
    return lines
