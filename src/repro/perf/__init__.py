"""Performance observability: cycle attribution, metrics export, benchmarks.

Three pillars (see ``docs/performance.md``):

* :mod:`repro.perf.attribution` — :class:`CycleAttributor`, an exact
  (conservation-checked) per-component latency profiler with hierarchical
  reports and flamegraph-ready collapsed-stack export;
* :mod:`repro.perf.metrics` — Prometheus-text / JSON exporters over the
  counter registry, plus :class:`MetricsSampler` for time series over
  simulated cycles;
* :mod:`repro.perf.bench` — the ``repro bench`` scenario suite with
  ``BENCH_<scenario>.json`` results and baseline regression comparison.
"""

from repro.perf.attribution import (
    AccessRecord,
    AttributionError,
    CycleAttributor,
    PathProfile,
)
from repro.perf.bench import (
    BenchResult,
    Comparison,
    compare,
    load_result,
    run_scenario,
    scenario_names,
    write_result,
)
from repro.perf.metrics import (
    MetricsSampler,
    metrics_dict,
    metrics_json,
    prometheus_text,
)

__all__ = [
    "AccessRecord",
    "AttributionError",
    "BenchResult",
    "Comparison",
    "CycleAttributor",
    "MetricsSampler",
    "PathProfile",
    "compare",
    "load_result",
    "metrics_dict",
    "metrics_json",
    "prometheus_text",
    "run_scenario",
    "scenario_names",
    "write_result",
]
