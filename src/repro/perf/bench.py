"""Benchmark scenario suite and regression comparison.

``repro bench`` runs a fixed set of scenarios — steady-state access mixes
for each preset, one leakage-detection victim, one covert-channel round —
and writes one ``BENCH_<scenario>.json`` per scenario.  Each result
records enough to diagnose a regression after the fact:

* ``simulated_cycles`` / ``accesses`` — the simulated workload's shape;
* ``host_wall_time_s`` / ``sim_accesses_per_second`` — host throughput,
  the figure :func:`compare` regresses on;
* ``peak_rss_kb`` — process peak resident set (``ru_maxrss``);
* ``git_rev`` and a full counter snapshot for provenance.

Scenario workloads are seeded (``--seed``), so the *simulated* columns are
deterministic for a given seed and code version; only the host-side
columns (wall time, throughput, RSS) vary between machines and runs.
Comparison is intentionally loose for that reason: a regression is flagged
only when current throughput drops more than ``threshold`` (default 20%)
below the baseline's.
"""

from __future__ import annotations

import contextlib
import gc
import json
import pathlib
import resource
import time
from dataclasses import asdict, dataclass
from random import Random
from typing import Callable

from repro import obs
from repro.attacks.covert import CovertChannelT
from repro.config import MIB, PAGE_SIZE, preset_config
from repro.leakcheck.victims import get_victim
from repro.os.page_alloc import PageAllocator
from repro.proc.batch import AccessBatch
from repro.proc.processor import SecureProcessor
from repro.utils.provenance import git_rev as _git_rev

SCHEMA_VERSION = 1
_STEADY_OPS = 4000
_STEADY_OPS_QUICK = 800


@dataclass(frozen=True)
class BenchResult:
    """One scenario's measurement; serialised to ``BENCH_<scenario>.json``."""

    schema_version: int
    scenario: str
    preset: str
    seed: int
    quick: bool
    git_rev: str
    simulated_cycles: int
    accesses: int
    host_wall_time_s: float
    sim_accesses_per_second: float
    peak_rss_kb: int
    counters: dict[str, float]

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @property
    def filename(self) -> str:
        return f"BENCH_{self.scenario}.json"


#: When set (see :func:`machine_instrument`), every scenario machine is
#: passed through this hook right after construction — the seam that lets
#: ``repro profile --scenario`` attach the cycle attributor without the
#: scenarios knowing about profiling.  Instrumented machines take the
#: scalar reference path in ``run_batch``, so the attribution is exact.
_MACHINE_INSTRUMENT: Callable[[SecureProcessor], None] | None = None


@contextlib.contextmanager
def machine_instrument(hook: Callable[[SecureProcessor], None]):
    """Attach ``hook`` to every machine built by scenarios in this block."""
    global _MACHINE_INSTRUMENT
    previous = _MACHINE_INSTRUMENT
    _MACHINE_INSTRUMENT = hook
    try:
        yield
    finally:
        _MACHINE_INSTRUMENT = previous


def _bench_machine(preset: str) -> tuple[SecureProcessor, PageAllocator]:
    overrides: dict[str, object] = {"functional_crypto": False,
                                    "timer_jitter_sigma": 0.0}
    if preset != "sgx":
        # The SGX preset derives its protected size from the EPC model.
        overrides["protected_size"] = 256 * MIB
    config = preset_config(preset, **overrides)
    proc = SecureProcessor(config)
    if _MACHINE_INSTRUMENT is not None:
        _MACHINE_INSTRUMENT(proc)
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    return proc, allocator


def _steady(preset: str, seed: int, quick: bool) -> tuple[SecureProcessor, int]:
    """Seeded steady-state mix: reads, writes, occasional flush + fence.

    The flushes keep the miss paths (counter fetch, tree walks) live so the
    benchmark exercises the full MEE read path, not just L1 hits.  The mix
    is recorded as one :class:`~repro.proc.AccessBatch` — drawing from the
    RNG in exactly the per-op order of the original scalar loop, so the
    simulated columns are bit-identical — and submitted in a single
    ``run_batch`` call.
    """
    proc, allocator = _bench_machine(preset)
    rng = Random(seed)
    frames = allocator.alloc_many(32, core=0)
    addrs = [frame * PAGE_SIZE + 64 * rng.randrange(PAGE_SIZE // 64)
             for frame in frames for _ in range(4)]
    ops = _STEADY_OPS_QUICK if quick else _STEADY_OPS
    cores = proc.config.cores
    batch = AccessBatch()
    for i in range(ops):
        addr = rng.choice(addrs)
        roll = rng.random()
        if roll < 0.70:
            batch.read(addr, core=rng.randrange(cores))
        elif roll < 0.90:
            batch.write(addr, i.to_bytes(8, "little"),
                        core=rng.randrange(cores))
        elif roll < 0.98:
            batch.flush(addr)
        else:
            batch.drain()
    batch.drain()
    proc.run_batch(batch)
    return proc, len(batch)


def _victim_rsa(seed: int, quick: bool) -> tuple[SecureProcessor, int]:
    """One full leakage-victim run (square-and-multiply RSA)."""
    spec = get_victim("rsa")
    secret, _ = spec.secrets(seed)
    config = preset_config("sct", functional_crypto=False,
                           protected_size=256 * MIB)
    proc = SecureProcessor(config)
    if _MACHINE_INSTRUMENT is not None:
        _MACHINE_INSTRUMENT(proc)
    spec.run(proc, secret)
    return proc, proc.stats.reads + proc.stats.writes + proc.stats.flushes


def _covert_t(seed: int, quick: bool) -> tuple[SecureProcessor, int]:
    """One covert-channel round over the shared integrity tree."""
    proc, allocator = _bench_machine("sct")
    channel = CovertChannelT(proc, allocator)
    rng = Random(seed)
    bits = [rng.randrange(2) for _ in range(8 if quick else 32)]
    channel.transmit(bits)
    return proc, proc.stats.reads + proc.stats.writes + proc.stats.flushes


@dataclass(frozen=True)
class RawMeasure:
    """A runner's pre-folded measurement when no single processor exists.

    Most scenarios return ``(SecureProcessor, accesses)`` and let
    :func:`run_scenario` read cycles and counters off the machine; system
    scenarios (like the service throughput bench, which drives a whole
    server) measure across many machines and return this instead.
    ``accesses`` keeps its role as the numerator of
    ``sim_accesses_per_second`` — for the service scenario that makes the
    compared figure sustained *jobs* per second.
    """

    simulated_cycles: int
    accesses: int
    counters: dict[str, float]


_SERVICE_JOBS = 48
_SERVICE_JOBS_QUICK = 12


def _service_jobs(seed: int, quick: bool) -> RawMeasure:
    """Sustained jobs/sec through the leakcheck service.

    Boots a real :class:`~repro.service.LeakcheckService` on a loopback
    port with a *fresh* campaign DB (so the dedup cache cannot inflate
    the figure), pushes distinct-seed probe jobs through the public load
    generator, and reports completed jobs as ``accesses``.
    """
    import asyncio
    import os
    import tempfile

    from repro.service import LeakcheckService, run_load

    jobs = _SERVICE_JOBS_QUICK if quick else _SERVICE_JOBS

    async def _run():
        with tempfile.TemporaryDirectory() as tmp:
            service = LeakcheckService(
                os.path.join(tmp, "bench-campaign.sqlite"),
                port=0,
                capacity=max(64, jobs),
                concurrency=2,
            )
            await service.start()
            try:
                report = await run_load(
                    "127.0.0.1",
                    service.port,
                    jobs=jobs,
                    concurrency=8,
                    kind="probe",
                    spec={"ops": 300, "seed": seed},
                )
            finally:
                await service.close()
            return report, service.registry.snapshot()

    report, counters = asyncio.run(_run())
    if not report.ok:
        raise RuntimeError(
            f"service load degraded during bench: {report.to_dict()}"
        )
    return RawMeasure(
        simulated_cycles=0, accesses=report.completed, counters=counters
    )


_SYNTH_PROGRAMS = 48
_SYNTH_PROGRAMS_QUICK = 12


def _synth_throughput(seed: int, quick: bool) -> RawMeasure:
    """Sustained fuzzed programs/sec through the synthesis oracle.

    Generates a fixed batch of programs and pushes them through the full
    fuzz path (in-thread engine, caching disabled so every program pays
    its two paired-secret runs); ``accesses`` is evaluated programs, so
    the compared figure is oracle evaluations per second.
    """
    from repro.campaign import CampaignEngine
    from repro.synth import run_fuzz

    budget = _SYNTH_PROGRAMS_QUICK if quick else _SYNTH_PROGRAMS
    engine = CampaignEngine(jobs=1, db=None, use_cache=False)
    report = run_fuzz(
        preset="sct", defense="none", budget=budget, seed=seed,
        engine=engine,
    )
    if report.failed:
        raise RuntimeError(
            f"synth bench had {report.failed} failed evaluation(s): "
            f"{report.errors[:3]}"
        )
    return RawMeasure(
        simulated_cycles=0,
        accesses=report.evaluated,
        counters=engine.registry.snapshot(),
    )


_Runner = Callable[[int, bool], "tuple[SecureProcessor, int] | RawMeasure"]

SCENARIOS: dict[str, tuple[str, _Runner]] = {
    "steady_sct": ("sct", lambda seed, quick: _steady("sct", seed, quick)),
    "steady_ht": ("ht", lambda seed, quick: _steady("ht", seed, quick)),
    "steady_sgx": ("sgx", lambda seed, quick: _steady("sgx", seed, quick)),
    "victim_rsa": ("sct", _victim_rsa),
    "covert_t": ("sct", _covert_t),
    "service_jobs": ("service", _service_jobs),
    "synth_throughput": ("synth", _synth_throughput),
}


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def run_scenario(
    name: str, *, seed: int = 0, quick: bool = False, repeats: int = 1
) -> BenchResult:
    """Run one scenario and measure it; raises ValueError on unknown name.

    With ``repeats > 1`` the scenario runs that many times and the
    *fastest* wall time is reported (the standard noise-robust estimator:
    host load only ever slows a run down, so the minimum is the best
    approximation of the true cost).  The simulated columns must be
    identical across repeats — scenarios are deterministic — and this is
    asserted, so repeats double as a determinism check.
    """
    entry = SCENARIOS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown bench scenario {name!r}; choose from {scenario_names()}"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    preset, runner = entry
    with obs.start_span(
        "bench.scenario", kind="bench.scenario",
        attrs={
            "scenario": name, "seed": seed, "quick": quick, "repeats": repeats,
        },
    ):
        wall = 0.0
        cycles = accesses = 0
        counters: dict[str, int] = {}
        gc_was_enabled = gc.isenabled()
        for rep in range(repeats):
            # Collector hygiene: collect leftovers from the previous rep,
            # then keep the collector out of the timed region so pauses
            # don't pollute the wall time.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                measured = runner(seed, quick)
                rep_wall = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
            if isinstance(measured, RawMeasure):
                rep_cycles = measured.simulated_cycles
                rep_accesses = measured.accesses
                rep_counters = measured.counters
            else:
                proc, rep_accesses = measured
                rep_cycles = proc.cycle
                rep_counters = proc.registry.snapshot()
            if rep == 0:
                wall = rep_wall
                cycles, accesses, counters = rep_cycles, rep_accesses, rep_counters
            elif (rep_cycles, rep_accesses) != (cycles, accesses):
                raise RuntimeError(
                    f"scenario {name!r} is non-deterministic across repeats: "
                    f"({rep_cycles}, {rep_accesses}) vs ({cycles}, {accesses})"
                )
            else:
                wall = min(wall, rep_wall)
    return BenchResult(
        schema_version=SCHEMA_VERSION,
        scenario=name,
        preset=preset,
        seed=seed,
        quick=quick,
        git_rev=_git_rev(),
        simulated_cycles=cycles,
        accesses=accesses,
        host_wall_time_s=round(wall, 6),
        sim_accesses_per_second=round(accesses / wall, 2) if wall > 0 else 0.0,
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        counters=counters,
    )


def profile_scenario(name: str, *, seed: int = 0, quick: bool = False):
    """Run one scenario under the cycle-attribution profiler.

    Returns ``(attributor, proc)`` for the scenario's machine.  With the
    profiler attached the batch API takes the scalar reference path, so
    the attribution is exact per-leg cycle accounting of the same event
    stream the uninstrumented benchmark simulates.  Only processor-backed
    scenarios (``steady_*``, ``victim_rsa``, ``covert_t``) can be
    profiled; system scenarios measure across many short-lived machines.
    """
    from repro.perf.attribution import CycleAttributor

    instrumented: list[tuple[SecureProcessor, CycleAttributor]] = []

    def _attach(proc: SecureProcessor) -> None:
        attributor = CycleAttributor()
        proc.attach_profiler(attributor)
        instrumented.append((proc, attributor))

    with machine_instrument(_attach):
        run_scenario(name, seed=seed, quick=quick)
    if not instrumented:
        raise ValueError(
            f"scenario {name!r} is not processor-backed and cannot be "
            f"profiled; choose one of the steady_*/victim/covert scenarios"
        )
    proc, attributor = instrumented[-1]
    attributor.verify()
    return attributor, proc


def write_result(result: BenchResult, out_dir: str | pathlib.Path) -> pathlib.Path:
    out = pathlib.Path(out_dir) / result.filename
    out.write_text(result.to_json())
    return out


def load_result(path: str | pathlib.Path) -> BenchResult:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema "
            f"{data.get('schema_version')!r} (want {SCHEMA_VERSION})"
        )
    return BenchResult(**data)


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one current result against its baseline.

    ``ratio`` is current over baseline throughput (old -> new), ``None``
    when no comparable baseline exists (missing or quick/full mismatch).
    """

    scenario: str
    status: str  # "ok" | "regression" | "no-baseline" | "skipped"
    detail: str
    ratio: float | None = None


def compare(
    results: list[BenchResult],
    baseline_dir: str | pathlib.Path,
    *,
    threshold: float = 0.2,
    min_ratio: float | None = None,
    min_ratio_prefix: str = "steady_",
) -> list[Comparison]:
    """Compare throughput against ``BENCH_*.json`` files in ``baseline_dir``.

    A scenario regresses when its ``sim_accesses_per_second`` falls more
    than ``threshold`` (a fraction) below the baseline's.  ``min_ratio``
    additionally requires scenarios whose name starts with
    ``min_ratio_prefix`` to reach at least that multiple of the baseline
    throughput — the CI speedup gate for committed pre-refactor
    baselines.  Quick/full mode mismatches are skipped rather than
    compared — the workloads differ.  Missing baselines are reported,
    not failed, so the first run of a new scenario does not break CI.
    """
    import math

    if not (threshold > 0 and math.isfinite(threshold)):
        raise ValueError(
            f"comparison threshold must be a positive finite fraction, "
            f"got {threshold!r}"
        )
    if min_ratio is not None and not (min_ratio > 0 and math.isfinite(min_ratio)):
        raise ValueError(
            f"min_ratio must be a positive finite multiple, got {min_ratio!r}"
        )
    outcomes: list[Comparison] = []
    base = pathlib.Path(baseline_dir)
    for result in results:
        ref_path = base / result.filename
        if not ref_path.exists():
            outcomes.append(Comparison(
                result.scenario, "no-baseline", f"{ref_path} not found"
            ))
            continue
        ref = load_result(ref_path)
        if ref.quick != result.quick:
            outcomes.append(Comparison(
                result.scenario, "skipped",
                "quick/full mode differs from baseline",
            ))
            continue
        current = result.sim_accesses_per_second
        baseline = ref.sim_accesses_per_second
        ratio = current / baseline if baseline > 0 else math.inf
        floor = baseline * (1 - threshold)
        detail = (
            f"{current:.0f} acc/s vs baseline {baseline:.0f} "
            f"({ratio:.2f}x, floor {floor:.0f})"
        )
        gated = min_ratio is not None and result.scenario.startswith(
            min_ratio_prefix
        )
        if current < floor:
            outcomes.append(
                Comparison(result.scenario, "regression", detail, ratio)
            )
        elif gated and ratio < min_ratio:
            outcomes.append(Comparison(
                result.scenario, "regression",
                f"{detail}; below required {min_ratio:.2f}x speedup gate",
                ratio,
            ))
        else:
            outcomes.append(Comparison(result.scenario, "ok", detail, ratio))
    return outcomes
