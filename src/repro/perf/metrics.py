"""Metrics export: Prometheus text format, JSON, and periodic sampling.

Two stateless exporters flatten a :class:`~repro.trace.counters.
CounterRegistry` into interchange formats:

* :func:`prometheus_text` emits the Prometheus text exposition format
  (``# TYPE`` lines, sanitised metric names, counters suffixed ``_total``)
  so a scrape of a long-running simulation can be pasted straight into
  promtool or a pushgateway;
* :func:`metrics_dict` / :func:`metrics_json` produce the same data as a
  plain mapping / JSON document for ad-hoc tooling.

:class:`MetricsSampler` turns the registry into a time series over
*simulated* cycles: attach it to a processor with ``attach_sampler`` and
it snapshots every ``every`` cycles.  When the buffer fills it decimates
(keeps every other sample and doubles the interval), so memory stays
bounded for arbitrarily long runs while coverage of the whole run is
preserved at decreasing resolution.
"""

from __future__ import annotations

import json
import pathlib
import re

from repro.trace.counters import CounterRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(path: str, kind: str, namespace: str) -> str:
    name = _NAME_OK.sub("_", f"{namespace}_{path.replace('.', '_')}")
    if kind == "counter":
        name += "_total"
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="..."``; everything else
    passes through (values are UTF-8).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def prom_sample(name: str, labels: dict[str, str] | None, value: float) -> str:
    """One sample line, with properly escaped label values."""
    if not labels:
        return f"{name} {_prom_value(value)}"
    rendered = ",".join(
        f'{key}="{escape_label_value(val)}"' for key, val in labels.items()
    )
    return f"{name}{{{rendered}}} {_prom_value(value)}"


def prom_header(name: str, kind: str, help_text: str) -> list[str]:
    """The ``# HELP`` + ``# TYPE`` preamble for one metric family.

    HELP text uses the same escaping rules as the format mandates for
    help lines (backslash and newline; quotes are legal verbatim there).
    """
    escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
    return [f"# HELP {name} {escaped}", f"# TYPE {name} {kind}"]


def prometheus_text(
    registry: CounterRegistry, *, namespace: str = "repro"
) -> str:
    """Render the registry in the Prometheus text exposition format.

    Every metric family — gauges included — gets both a ``# HELP`` and a
    ``# TYPE`` line, so downstream scrapers that key on HELP for family
    boundaries parse gauges the same way they parse counters.
    """
    lines: list[str] = []
    for path, kind, value in sorted(registry.items()):
        name = _prom_name(path, kind, namespace)
        lines += prom_header(name, kind, f"repro {kind} {path}")
        lines.append(prom_sample(name, None, value))
    return "\n".join(lines) + "\n"


def metrics_dict(registry: CounterRegistry) -> dict[str, dict[str, float]]:
    """Registry contents as ``{"counters": {...}, "gauges": {...}}``."""
    out: dict[str, dict[str, float]] = {"counters": {}, "gauges": {}}
    for path, kind, value in registry.items():
        out[f"{kind}s"][path] = value
    return out


def metrics_json(registry: CounterRegistry, *, indent: int = 2) -> str:
    return json.dumps(metrics_dict(registry), indent=indent, sort_keys=True)


class MetricsSampler:
    """Snapshot a registry every N simulated cycles, with bounded memory.

    The processor calls :meth:`on_cycle` as its clock advances; whenever at
    least ``every`` cycles have elapsed since the last sample, the registry
    is snapshotted.  Once ``max_samples`` snapshots accumulate, the sampler
    decimates: it keeps every other sample and doubles ``every``, trading
    resolution for unbounded run length.
    """

    #: Component-graph slot this instrument occupies (``repro.core``).
    instrument_slot = "sampler"

    def __init__(
        self,
        registry: CounterRegistry,
        *,
        every: int = 10_000,
        max_samples: int = 4096,
    ) -> None:
        if every <= 0:
            raise ValueError("sampling interval must be positive")
        if max_samples < 2:
            raise ValueError("need room for at least two samples")
        self.registry = registry
        self.every = every
        self.max_samples = max_samples
        self.samples: list[tuple[int, dict[str, float]]] = []
        self._next_at = 0

    def on_cycle(self, cycle: int) -> None:
        if cycle < self._next_at:
            return
        self.sample(cycle)

    def sample(self, cycle: int) -> None:
        """Take a snapshot now, regardless of the schedule."""
        self.samples.append((cycle, self.registry.snapshot()))
        self._next_at = cycle + self.every
        if len(self.samples) >= self.max_samples:
            self.samples = self.samples[::2]
            self.every *= 2

    def series(self, path: str) -> list[tuple[int, float]]:
        """The sampled (cycle, value) series for one dotted counter path."""
        return [
            (cycle, snap[path]) for cycle, snap in self.samples if path in snap
        ]

    def to_dict(self) -> dict:
        return {
            "every": self.every,
            "samples": [
                {"cycle": cycle, "values": snap} for cycle, snap in self.samples
            ],
        }

    def write_json(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
