"""Trace exporters: JSONL (lossless round-trip) and Chrome ``trace_event``.

The JSONL form is one event per line and reads back into identical
:class:`~repro.trace.events.TraceEvent` objects.  The Chrome form follows
the ``trace_event`` JSON schema (https://ui.perfetto.dev loads it
directly): each component becomes a named "process", each core a thread,
events with a ``value`` become complete ("X") slices whose duration is the
value, and the rest become instants — so a metadata-cache miss and its
tree walk appear as nested slices on the issuing core's track.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence

from repro.trace.events import TraceEvent


def write_jsonl(events: Iterable[TraceEvent], path: str | pathlib.Path) -> int:
    """Write one JSON object per event; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | pathlib.Path) -> list[TraceEvent]:
    """Read a JSONL trace back into event objects (inverse of write)."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON event line"
                ) from exc
            events.append(TraceEvent.from_dict(payload))
    return events


def to_chrome_trace(events: Sequence[TraceEvent]) -> dict[str, object]:
    """Convert events to a Chrome ``trace_event`` document (dict form)."""
    components = sorted({event.component for event in events})
    pids = {component: pid for pid, component in enumerate(components, start=1)}
    records: list[dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": component},
        }
        for component, pid in pids.items()
    ]
    for event in events:
        record: dict[str, object] = {
            "name": event.kind,
            "cat": event.component,
            "pid": pids[event.component],
            "tid": event.core + 1,  # core -1 (unknown) maps to thread 0
            "ts": event.cycle,
            "args": {
                key: value
                for key, value in (
                    ("addr", event.addr),
                    ("set", event.set_index),
                    ("level", event.level),
                )
                if value is not None
            },
        }
        if event.value is not None:
            record["ph"] = "X"
            record["dur"] = max(0, int(event.value))
            record["args"]["value"] = event.value
        else:
            record["ph"] = "i"
            record["s"] = "t"
        records.append(record)
    return {"traceEvents": records, "displayTimeUnit": "ns"}


def write_chrome_trace(
    events: Sequence[TraceEvent], path: str | pathlib.Path
) -> int:
    """Write the Chrome trace JSON; returns the number of events exported."""
    document = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(events)
