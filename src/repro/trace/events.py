"""The structured metadata event bus (``repro.trace``).

A :class:`Tracer` is a bounded ring buffer of :class:`TraceEvent` records.
Components hold a ``tracer`` attribute that is ``None`` by default — the
zero-overhead-when-off contract is a single ``is not None`` test on every
instrumented path — and :meth:`SecureProcessor.attach_tracer
<repro.proc.processor.SecureProcessor.attach_tracer>` threads one tracer
through every layer (caches, memory controller, DRAM, encryption engine,
integrity trees, crypto engine).

Events carry the fields the MetaLeak analyses care about: simulation
cycle, issuing core (when known), emitting component, event kind, block
address, cache set and tree level.  ``value`` is a kind-specific scalar
(latency in cycles, walk depth, burst size).
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured metadata event."""

    cycle: int
    component: str
    kind: str
    core: int = -1
    addr: int | None = None
    set_index: int | None = None
    level: int | None = None
    value: float | None = None

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TraceEvent":
        return cls(**{key: payload.get(key) for key in _EVENT_FIELDS})


_EVENT_FIELDS = tuple(TraceEvent.__dataclass_fields__)


class Tracer:
    """Ring-buffered event sink shared by every instrumented component.

    The buffer holds the most recent ``capacity`` events; older events are
    dropped oldest-first and tallied in :attr:`dropped`.  ``emitted``
    counts every event ever offered, so ``emitted - dropped == len(self)``
    until :meth:`clear`.
    """

    #: Component-graph slot this instrument occupies (``repro.core``).
    instrument_slot = "tracer"

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque()
        self.emitted = 0
        self.dropped = 0
        self._clock: Callable[[], int] | None = None

    # -- wiring ------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Install the cycle source used when ``emit`` gets no cycle."""
        self._clock = clock

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        component: str,
        kind: str,
        *,
        cycle: int | None = None,
        core: int = -1,
        addr: int | None = None,
        set_index: int | None = None,
        level: int | None = None,
        value: float | None = None,
    ) -> None:
        """Record one event (components call this behind a ``None`` guard)."""
        if cycle is None:
            cycle = self._clock() if self._clock is not None else 0
        if len(self._buffer) >= self.capacity:
            self._buffer.popleft()
            self.dropped += 1
        self.emitted += 1
        self._buffer.append(
            TraceEvent(
                cycle=cycle,
                component=component,
                kind=kind,
                core=core,
                addr=addr,
                set_index=set_index,
                level=level,
                value=value,
            )
        )

    # -- inspection --------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """Buffered events in nondecreasing cycle order.

        Emission order and cycle order can disagree locally — posted-write
        drains run "into the future" while the issuing core's clock stays
        put — so the buffer is stably sorted by cycle on the way out.
        """
        return sorted(self._buffer, key=lambda event: event.cycle)

    def raw_events(self) -> list[TraceEvent]:
        """Buffered events in emission order (for drop-order tests)."""
        return list(self._buffer)

    def counts(self) -> dict[tuple[str, str], int]:
        """Buffered event tally keyed by (component, kind)."""
        return dict(
            _TallyCounter((event.component, event.kind) for event in self._buffer)
        )

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Drop all buffered events and reset the tallies."""
        self._buffer.clear()
        self.emitted = 0
        self.dropped = 0


def group_by_kind(
    events: Iterable[TraceEvent],
) -> dict[tuple[str, str], list[TraceEvent]]:
    """Split an event stream into per-(component, kind) sub-streams."""
    grouped: dict[tuple[str, str], list[TraceEvent]] = {}
    for event in events:
        grouped.setdefault((event.component, event.kind), []).append(event)
    return grouped
