"""Hierarchical counter/gauge registry for simulator observability.

Every component owns a small :class:`CounterRegistry` holding its counters
(monotonic tallies: hits, misses, drains, ...) and gauges (sampled values:
occupancy, queue depth).  The processor mounts the component registries
under dotted prefixes (``core0.l1``, ``memctrl``, ``meta_cache``, ...) so
one :meth:`CounterRegistry.snapshot` call yields the whole machine's state
as a flat ``{"memctrl.drains": 3, ...}`` mapping.

Counters are plain attribute-bearing objects: hot paths bump
``counter.value += 1`` directly, so the registry adds one indirection over
the old ad-hoc ``self.hits`` integers and nothing else.
"""

from __future__ import annotations

from typing import Callable


class Counter:
    """A monotonic (but resettable) integer tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A sampled value: either set explicitly or read through a callback."""

    __slots__ = ("name", "fn", "value")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.fn = fn
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def read(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.read()})"


class CounterRegistry:
    """A tree of counters/gauges; children mount under dotted prefixes."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._children: dict[str, CounterRegistry] = {}
        # Intermediate registries this registry created itself while
        # resolving dotted mount prefixes.  Only these may be recursed into
        # by later mounts; grafting into an externally mounted child would
        # silently rewire someone else's registry.
        self._owned_mounts: set[str] = set()

    # -- registration ------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if not name or "." in name:
            raise ValueError(f"registry names are non-empty and dot-free: {name!r}")
        taken = (
            name in self._counters or name in self._gauges or name in self._children
        )
        if taken:
            raise ValueError(f"registry name already in use: {name!r}")

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it on first use."""
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        self._check_name(name)
        created = Counter(name)
        self._counters[name] = created
        return created

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        """Return the gauge called ``name``, creating it on first use."""
        existing = self._gauges.get(name)
        if existing is not None:
            return existing
        self._check_name(name)
        created = Gauge(name, fn)
        self._gauges[name] = created
        return created

    def mount(self, prefix: str, child: "CounterRegistry") -> None:
        """Expose ``child``'s counters under ``prefix.*`` in snapshots.

        A dotted prefix (``core0.l1``) creates intermediate registries as
        needed, so callers can mount leaf components at any depth.

        Every collision raises :class:`ValueError`: a prefix segment that is
        already a counter or gauge name, a remount over an existing child,
        and a dotted mount that would recurse into a child mounted
        externally (grafting into a component's own registry).
        """
        if child is self:
            raise ValueError("cannot mount a registry under itself")
        head, _, rest = prefix.partition(".")
        if rest:
            node = self._children.get(head)
            if node is None:
                self._check_name(head)
                node = CounterRegistry()
                self._children[head] = node
                self._owned_mounts.add(head)
            elif head not in self._owned_mounts:
                raise ValueError(
                    f"cannot mount under {prefix!r}: {head!r} is an "
                    "externally mounted registry, not a mount-created "
                    "intermediate"
                )
            node.mount(rest, child)
            return
        self._check_name(prefix)
        self._children[prefix] = child

    # -- inspection --------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Flatten the whole registry tree into dotted-path -> value."""
        flat: dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.read()
        for prefix, child in self._children.items():
            for path, value in child.snapshot().items():
                flat[f"{prefix}.{path}"] = value
        return flat

    def items(self):
        """Yield ``(dotted-path, kind, value)``; kind is "counter"/"gauge".

        Like :meth:`snapshot` but typed, so exporters that must distinguish
        monotonic tallies from sampled values (e.g. the Prometheus text
        format's ``# TYPE`` lines) do not have to guess from the name.
        """
        for name, counter in self._counters.items():
            yield name, "counter", counter.value
        for name, gauge in self._gauges.items():
            yield name, "gauge", gauge.read()
        for prefix, child in self._children.items():
            for path, kind, value in child.items():
                yield f"{prefix}.{path}", kind, value

    def tree(self) -> dict[str, object]:
        """Nested-dict view (one level of dict per mount point)."""
        nested: dict[str, object] = {}
        for name, counter in self._counters.items():
            nested[name] = counter.value
        for name, gauge in self._gauges.items():
            nested[name] = gauge.read()
        for prefix, child in self._children.items():
            nested[prefix] = child.tree()
        return nested

    def get(self, path: str) -> float:
        """Resolve one dotted path (``memctrl.drains``) to its value."""
        head, _, rest = path.partition(".")
        if rest:
            child = self._children.get(head)
            if child is None:
                raise KeyError(f"no registry mounted at {head!r}")
            return child.get(rest)
        if head in self._counters:
            return self._counters[head].value
        if head in self._gauges:
            return self._gauges[head].read()
        raise KeyError(f"no counter or gauge named {head!r}")

    def __contains__(self, path: str) -> bool:
        try:
            self.get(path)
        except KeyError:
            return False
        return True
