"""``repro.trace`` — metadata event tracing and the counter registry.

Attach a :class:`Tracer` with ``proc.attach_tracer(tracer)`` to capture
structured :class:`TraceEvent` streams from every layer of the machine;
read per-component tallies from ``proc.registry`` (a hierarchical
:class:`CounterRegistry`).  See ``docs/observability.md``.
"""

from repro.trace.counters import Counter, CounterRegistry, Gauge
from repro.trace.events import TraceEvent, Tracer, group_by_kind
from repro.trace.export import (
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "CounterRegistry",
    "Gauge",
    "TraceEvent",
    "Tracer",
    "group_by_kind",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
