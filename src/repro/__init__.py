"""MetaLeak reproduction: metadata side channels in secure processors.

A from-scratch implementation of the system evaluated in *MetaLeak:
Uncovering Side Channels in Secure Processor Architectures Exploiting
Metadata* (ISCA 2024): a cycle-accounting secure-processor simulator
(counter-mode encryption, MACs, HT/SCT/SIT integrity trees, metadata
cache), the MetaLeak-T / MetaLeak-C attack framework, victim
applications, defenses, and a harness regenerating every paper figure.

Quick start::

    from repro import MetaLeakT, PageAllocator, SecureProcessor
    from repro.config import MIB, SecureProcessorConfig

    proc = SecureProcessor(SecureProcessorConfig.sct_default(protected_size=256 * MIB))
    alloc = PageAllocator(proc.layout.data_size // 4096, cores=4)
    monitor = MetaLeakT(proc, alloc, core=1).monitor_for_page(alloc.alloc_specific(100))
    monitor.m_evict()
    # ... victim runs ...
    latency, victim_accessed = monitor.m_reload()

See DESIGN.md for the system inventory, EXPERIMENTS.md for paper-vs-
measured results, and ``python -m repro list`` for the figure harness.
"""

from repro.config import SecureProcessorConfig
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor

__version__ = "1.0.0"

__all__ = ["PageAllocator", "SecureProcessor", "SecureProcessorConfig", "__version__"]


def __getattr__(name):
    """Lazy access to the attack framework (avoids import cycles/cost)."""
    if name in ("MetaLeakT", "MetaLeakC", "CovertChannelT", "CovertChannelC"):
        import repro.attacks as attacks

        return getattr(attacks, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
