"""Access batches: vectors of processor operations submitted in one call.

The scalar ``SecureProcessor.read``/``write``/... operations stay the
reference implementation; an :class:`AccessBatch` is just a recorded
sequence of those operations that ``SecureProcessor.run_batch`` can
execute with per-batch precomputed address decompositions and an inlined
L1-hit path.  Batch execution is *semantically identical* to replaying
the same operations through the scalar calls — same simulated cycles,
same cache/counter state, same RNG draws — which the batch-vs-scalar
equivalence property test (tests/test_batch.py) locks in.

Whenever any instrument is attached (tracer, profiler, sampler, fault
hook), ``run_batch`` falls back to the scalar loop outright, so
instruments observe byte-identical event streams by construction.  See
the "Functional/timing split & batching" section of docs/architecture.md.
"""

from __future__ import annotations

from typing import Iterable, Iterator

# Operation kinds, small ints so the hot dispatch loop compares cheaply.
OP_READ = 0
OP_WRITE = 1
OP_WRITE_THROUGH = 2
OP_FLUSH = 3
OP_DRAIN = 4

#: One recorded operation: (kind, addr, data, core).  ``addr`` is None
#: for drains; ``data`` is only meaningful for the write kinds.
BatchOp = tuple[int, int | None, bytes | None, int]


class AccessBatch:
    """A recorded vector of processor operations.

    Builder methods return ``self`` so sequences chain; the batch is
    inert until handed to ``SecureProcessor.run_batch``.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: list[BatchOp] = []

    def __len__(self) -> int:
        return len(self.ops)

    # -- builders ----------------------------------------------------------

    def read(self, addr: int, *, core: int = 0) -> "AccessBatch":
        self.ops.append((OP_READ, addr, None, core))
        return self

    def write(
        self, addr: int, data: bytes | None = None, *, core: int = 0
    ) -> "AccessBatch":
        self.ops.append((OP_WRITE, addr, data, core))
        return self

    def write_through(
        self, addr: int, data: bytes | None = None, *, core: int = 0
    ) -> "AccessBatch":
        self.ops.append((OP_WRITE_THROUGH, addr, data, core))
        return self

    def flush(self, addr: int) -> "AccessBatch":
        self.ops.append((OP_FLUSH, addr, None, -1))
        return self

    def drain(self) -> "AccessBatch":
        self.ops.append((OP_DRAIN, None, None, -1))
        return self

    @classmethod
    def reads(cls, addrs: Iterable[int], *, core: int = 0) -> "AccessBatch":
        """A batch that reads every address in ``addrs`` in order."""
        batch = cls()
        ops = batch.ops
        for addr in addrs:
            ops.append((OP_READ, addr, None, core))
        return batch


class BatchResult:
    """Per-operation outcomes of one executed batch, aligned with its ops.

    Read/write/write-through slots hold the scalar ``AccessResult``;
    flush slots hold the flush latency (int); drain slots hold ``None``
    — exactly what the corresponding scalar call would have returned.
    """

    __slots__ = ("ops", "results")

    def __init__(self, ops: list[BatchOp], results: list) -> None:
        self.ops = ops
        self.results = results

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator:
        return iter(self.results)

    def __getitem__(self, index: int):
        return self.results[index]

    # -- read-side helpers (what attacks and victims consume) --------------

    def read_results(self) -> list:
        """The ``AccessResult`` of every OP_READ, in submission order."""
        return [
            result
            for op, result in zip(self.ops, self.results)
            if op[0] == OP_READ
        ]

    def read_latencies(self) -> list[int]:
        return [result.latency for result in self.read_results()]

    def max_read_latency(self) -> int:
        """Largest observed read latency (0 for a batch with no reads)."""
        latencies = self.read_latencies()
        return max(latencies) if latencies else 0

    def read_count(self) -> int:
        return sum(1 for op in self.ops if op[0] == OP_READ)

    def paths(self) -> list:
        """AccessPath of every read/write result, in submission order."""
        return [
            result.path
            for op, result in zip(self.ops, self.results)
            if op[0] in (OP_READ, OP_WRITE)
        ]
