"""The simulated secure processor: cores, caches, MEE and a global clock."""

from repro.proc.paths import AccessPath
from repro.proc.processor import AccessResult, SecureProcessor

__all__ = ["AccessPath", "AccessResult", "SecureProcessor"]
