"""The simulated secure processor: cores, caches, MEE and a global clock."""

from repro.proc.batch import AccessBatch, BatchResult
from repro.proc.paths import AccessPath
from repro.proc.processor import AccessResult, SecureProcessor

__all__ = [
    "AccessBatch",
    "AccessPath",
    "AccessResult",
    "BatchResult",
    "SecureProcessor",
]
