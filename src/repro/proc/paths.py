"""The data access paths of Figure 5."""

from __future__ import annotations

import enum


class AccessPath(enum.Enum):
    """Where a read was satisfied, and how much metadata work it took.

    The first three are Path-1 of the paper (on-chip cache hit, no security
    machinery involved); the final three are Paths 2-4, distinguished by
    how far into the metadata hierarchy the MEE had to reach.
    """

    L1_HIT = "L1 hit"
    L2_HIT = "L2 hit"
    L3_HIT = "L3 hit"
    MEM_COUNTER_HIT = "Path-2: memory, counter cached"
    MEM_TREE_HIT = "Path-3: memory, counter miss, tree leaf cached"
    MEM_TREE_MISS = "Path-4: memory, tree node miss(es)"

    @property
    def is_cache_hit(self) -> bool:
        return self in (AccessPath.L1_HIT, AccessPath.L2_HIT, AccessPath.L3_HIT)

    @property
    def paper_name(self) -> str:
        if self.is_cache_hit:
            return "Path-1"
        return self.value.split(":")[0]
