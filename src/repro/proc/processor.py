"""`SecureProcessor` — the machine the victims run on and attacks target.

The processor composes the data-cache hierarchy, memory controller and
memory encryption engine, and exposes the software-visible operations the
paper's threat model assumes:

* ``read`` / ``write`` — ordinary accesses (write-allocate, write-back);
* ``write_through`` — a persisted store (clwb+fence style) that reaches the
  memory controller immediately, as in the persistent-memory applications
  and cache-cleansed victims of Section III;
* ``flush`` — clflush of one's own lines (cache cleansing);
* ``drain_writes`` — force the MC write queue to service, the primitive
  MetaLeak-C uses to control counter state;
* a global cycle clock advanced by every operation, so concurrently
  "running" attacker and victim calls observe each other through DRAM bank
  busy state (overflow bursts) and shared metadata-cache state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BLOCK_SIZE, SecureProcessorConfig
from repro.core import (
    FAULT_HOOK,
    NULL_TXN,
    PROFILER,
    SAMPLER,
    TRACER,
    Component,
    Txn,
    slot_of,
)
from repro.core import attach as graph_attach
from repro.core import detach as graph_detach
from repro.mem.block import block_address
from repro.mem.hierarchy import DataCacheSystem
from repro.mem.memctrl import MemoryController
from repro.proc.batch import (
    OP_DRAIN,
    OP_FLUSH,
    OP_READ,
    OP_WRITE,
    OP_WRITE_THROUGH,
    AccessBatch,
    BatchResult,
)
from repro.proc.paths import AccessPath
from repro.secmem.engine import MemoryEncryptionEngine
from repro.trace.counters import CounterRegistry

_FLUSH_LATENCY = 40
_STORE_BUFFER_LATENCY = 6


@dataclass(slots=True)
class AccessResult:
    """What one processor-level access did and how long it took."""

    latency: int
    path: AccessPath
    cycle: int
    counter_hit: bool = False
    tree_levels_missed: int = 0
    data: bytes = b""
    # Critical-path cycle attribution (populated only while a profiler is
    # attached): component -> cycles, summing exactly to the access's
    # pre-jitter latency.  See ``repro.perf`` / docs/performance.md.
    breakdown: dict[str, int] | None = None


@dataclass
class ProcessorStats:
    reads: int = 0
    writes: int = 0
    flushes: int = 0
    path_counts: dict[AccessPath, int] = field(default_factory=dict)

    def count(self, path: AccessPath) -> None:
        self.path_counts[path] = self.path_counts.get(path, 0) + 1


class SecureProcessor(Component):
    """A multi-core secure processor per Table I.

    The processor is the root of the component graph (``repro.core``):
    ``attach`` installs an instrument — tracer, fault hook, cycle
    attributor, metrics sampler — across the whole machine in one walk,
    and every software-visible operation runs under a per-access
    :class:`~repro.core.Txn` created by :meth:`_begin`.
    """

    instrument_slots = (TRACER, FAULT_HOOK, PROFILER, SAMPLER)

    def __init__(self, config: SecureProcessorConfig | None = None) -> None:
        self.config = config or SecureProcessorConfig.sct_default()
        self.caches = DataCacheSystem(self.config)
        self.memctrl = MemoryController(self.config.memctrl, self.config.dram)
        self.mee = MemoryEncryptionEngine(self.config, self.memctrl)
        self.layout = self.mee.layout
        self.cycle = 0
        self.stats = ProcessorStats()
        # One machine-wide view over every component's counter registry,
        # mounted under dotted prefixes (``core0.l1.hits``, ``dram.reads``…).
        self.registry = CounterRegistry()
        for i, core in enumerate(self.caches.core_caches):
            self.registry.mount(f"core{i}.l1", core.l1.counters)
            self.registry.mount(f"core{i}.l2", core.l2.counters)
        for s, l3 in enumerate(self.caches.l3s):
            self.registry.mount(f"l3.socket{s}", l3.counters)
        self.registry.mount("memctrl", self.memctrl.counters)
        self.registry.mount("dram", self.memctrl.dram.counters)
        self.registry.mount("meta_cache", self.mee.meta_cache.counters)
        if self.mee.tree_cache is not self.mee.meta_cache:
            self.registry.mount("tree_cache", self.mee.tree_cache.counters)
        self.registry.mount("crypto", self.mee.cipher.counters)
        # Instrument slots (tracer, fault hook, profiler, sampler) start
        # detached; None keeps every instrumented path down to a single
        # attribute test.
        self.init_component("proc")
        # Architectural (software-visible) values of written blocks.
        self._plain: dict[int, bytes] = {}
        from repro.utils.rng import derive_rng

        self._timer_rng = derive_rng(self.config.seed, "timer")

    def children(self):
        return (self.caches, self.mee)

    # ------------------------------------------------------------------
    # Instrument attachment (component graph root)
    # ------------------------------------------------------------------

    def attach(self, instrument, *, slot: str | None = None) -> int:
        """Install an instrument across the whole machine in one walk.

        The slot is inferred from the instrument's ``instrument_slot``
        class attribute (``repro.trace.Tracer`` → ``tracer``,
        ``repro.faults.FaultHook`` → ``fault_hook``,
        ``repro.perf.CycleAttributor`` → ``profiler``,
        ``repro.perf.MetricsSampler`` → ``sampler``) unless given
        explicitly.  Tracers get their clock bound to this processor's
        cycle counter; samplers take an initial snapshot.  Returns the
        number of components reached; :func:`repro.core.detach` (or the
        legacy ``attach_*(None)`` shims) restores the no-op fast path.
        """
        slot = slot if slot is not None else slot_of(instrument)
        if slot == TRACER and instrument is not None:
            instrument.bind_clock(lambda: self.cycle)
        count = graph_attach(self, instrument, slot=slot)
        if slot == SAMPLER and instrument is not None:
            instrument.on_cycle(self.cycle)
        return count

    def attach_tracer(self, tracer) -> None:
        """Thread one trace sink through the whole machine.

        Deprecated shim over :meth:`attach`.  Binds the tracer's clock to
        this processor's cycle counter (so components that have no notion
        of time stamp events correctly) and attaches it to every cache,
        the memory controller, DRAM and the memory encryption engine.
        ``None`` detaches everywhere.
        """
        if tracer is None:
            graph_detach(self, TRACER)
        else:
            self.attach(tracer, slot=TRACER)

    def attach_profiler(self, profiler) -> None:
        """Attach a cycle attributor (``repro.perf.CycleAttributor``).

        Deprecated shim over :meth:`attach`.  While attached, every
        software-visible operation reports its latency as a per-component
        breakdown whose sum equals the access's pre-jitter latency (the
        conservation guarantee).  ``None`` detaches and restores the
        zero-overhead path.
        """
        if profiler is None:
            graph_detach(self, PROFILER)
        else:
            self.attach(profiler, slot=PROFILER)

    def attach_sampler(self, sampler) -> None:
        """Attach a metrics sampler (``repro.perf.MetricsSampler``).

        Deprecated shim over :meth:`attach`.  The sampler snapshots
        ``self.registry`` every N simulated cycles, ticked from the
        operations that advance the machine clock.  ``None`` detaches.
        """
        if sampler is None:
            graph_detach(self, SAMPLER)
        else:
            self.attach(sampler, slot=SAMPLER)

    # ------------------------------------------------------------------
    # Per-access transactions
    # ------------------------------------------------------------------

    def _begin(self, op: str, core: int, addr: int | None) -> Txn:
        """Open the transaction for one software-visible operation.

        Returns the shared no-op :data:`~repro.core.NULL_TXN` when nothing
        is attached anywhere — the zero-overhead fast path allocates
        nothing.  Otherwise the transaction carries the attached tracer
        and the engine's fault hook down the memory path, and builds
        attribution parts only while a profiler is attached.
        """
        if (
            self.tracer is None
            and self.profiler is None
            and self.mee.fault_hook is None
        ):
            return NULL_TXN
        return Txn(
            op,
            core,
            addr,
            tracer=self.tracer,
            fault_hook=self.mee.fault_hook,
            profiling=self.profiler is not None,
        )

    def _finish(self, txn: Txn, *, path: AccessPath | None, latency: int) -> None:
        """Close a transaction: report attribution, tick the sampler."""
        if txn.profiling:
            self.profiler.on_access(
                op=txn.op, path=path, core=txn.core, addr=txn.addr,
                cycle=self.cycle, latency=latency, parts=txn.parts,
                shadowed=txn.shadowed or None,
            )
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)

    def _observed(self, latency: int) -> int:
        """Latency as software measures it (with modeled timer noise)."""
        sigma = self.config.timer_jitter_sigma
        if sigma <= 0:
            return latency
        return max(1, round(latency + self._timer_rng.gauss(0, sigma)))

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def advance(self, cycles: int) -> None:
        """Let wall-clock time pass without issuing an access."""
        if cycles < 0:
            raise ValueError("cannot advance backwards")
        self.cycle += cycles
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)

    def quiesce(self) -> int:
        """Idle until all DRAM banks are free; returns cycles waited.

        Attackers do this before a timed read so the measurement reflects
        only the access path under test, not leftover bank occupancy from
        their own earlier traffic.  (It deliberately does not drain the
        write queue — that would perturb counter state.)
        """
        waited = max(0, self.memctrl.dram.max_busy_until() - self.cycle)
        self.cycle += waited
        return waited

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def read(self, addr: int, *, core: int = 0) -> AccessResult:
        """Load the block containing ``addr``."""
        self._check_data_addr(addr)
        self.stats.reads += 1
        block = block_address(addr)
        txn = self._begin("read", core, block)
        hier = self.caches.access(core, block, is_write=False)
        if hier.hit_level is not None:
            path = (AccessPath.L1_HIT, AccessPath.L2_HIT, AccessPath.L3_HIT)[
                hier.hit_level - 1
            ]
            self.stats.count(path)
            self.cycle += hier.latency
            txn.emit(
                "proc", "read", core=core, addr=block, value=float(hier.latency)
            )
            txn.charge(f"cache.l{hier.hit_level}_hit", hier.latency)
            self._finish(txn, path=path, latency=hier.latency)
            return AccessResult(
                latency=self._observed(hier.latency),
                path=path,
                cycle=self.cycle,
                data=self._plain.get(block, bytes(BLOCK_SIZE)),
                breakdown=txn.parts,
            )
        self._handle_writebacks(hier.writebacks)
        txn.charge("cache.lookup", hier.latency)
        outcome = self.mee.read_data(block, self.cycle + hier.latency, txn=txn)
        for writeback in self.caches.fill(core, block, dirty=False):
            self._enqueue_data_writeback(writeback)
        latency = hier.latency + outcome.latency
        self.cycle += latency
        path = self._classify(outcome.counter_hit, outcome.tree_levels_missed)
        self.stats.count(path)
        txn.emit("proc", "read", core=core, addr=block, value=float(latency))
        self._finish(txn, path=path, latency=latency)
        return AccessResult(
            latency=self._observed(latency),
            path=path,
            cycle=self.cycle,
            counter_hit=outcome.counter_hit,
            tree_levels_missed=outcome.tree_levels_missed,
            data=outcome.plaintext,
            breakdown=txn.parts,
        )

    def write(
        self, addr: int, data: bytes | None = None, *, core: int = 0
    ) -> AccessResult:
        """Store to the block containing ``addr`` (write-allocate/back)."""
        self._check_data_addr(addr)
        self.stats.writes += 1
        block = block_address(addr)
        self._plain[block] = self._coerce_data(block, data)
        txn = self._begin("write", core, block)
        hier = self.caches.access(core, block, is_write=True)
        if hier.hit_level is not None:
            self.cycle += hier.latency
            path = (AccessPath.L1_HIT, AccessPath.L2_HIT, AccessPath.L3_HIT)[
                hier.hit_level - 1
            ]
            txn.emit(
                "proc", "write", core=core, addr=block, value=float(hier.latency)
            )
            txn.charge(f"cache.l{hier.hit_level}_hit", hier.latency)
            self._finish(txn, path=path, latency=hier.latency)
            return AccessResult(
                latency=hier.latency, path=path, cycle=self.cycle,
                breakdown=txn.parts,
            )
        self._handle_writebacks(hier.writebacks)
        txn.charge("cache.lookup", hier.latency)
        # Fetch-for-write: the miss path is the same as a read.
        outcome = self.mee.read_data(block, self.cycle + hier.latency, txn=txn)
        for writeback in self.caches.fill(core, block, dirty=True):
            self._enqueue_data_writeback(writeback)
        latency = hier.latency + outcome.latency
        self.cycle += latency
        path = self._classify(outcome.counter_hit, outcome.tree_levels_missed)
        self.stats.count(path)
        txn.emit("proc", "write", core=core, addr=block, value=float(latency))
        self._finish(txn, path=path, latency=latency)
        return AccessResult(
            latency=latency,
            path=path,
            cycle=self.cycle,
            counter_hit=outcome.counter_hit,
            tree_levels_missed=outcome.tree_levels_missed,
            breakdown=txn.parts,
        )

    def write_through(
        self, addr: int, data: bytes | None = None, *, core: int = 0
    ) -> AccessResult:
        """Persisted store: bypasses the caches and posts to the MC now."""
        self._check_data_addr(addr)
        self.stats.writes += 1
        block = block_address(addr)
        self._plain[block] = self._coerce_data(block, data)
        txn = self._begin("write_through", core, block)
        self.caches.flush(block)  # drop any stale cached copy
        enqueue = self.mee.write_data(block, self._plain[block], self.cycle)
        latency = _STORE_BUFFER_LATENCY + enqueue
        self.cycle += latency
        txn.emit(
            "proc", "write_through", core=core, addr=block, value=float(latency)
        )
        txn.charge("op.store_buffer", _STORE_BUFFER_LATENCY)
        txn.charge("op.enqueue", enqueue)
        self._finish(txn, path=None, latency=latency)
        return AccessResult(
            latency=latency, path=AccessPath.L1_HIT, cycle=self.cycle,
            breakdown=txn.parts,
        )

    def flush(self, addr: int, *, keep_clean_copy: bool = False) -> int:
        """clflush: drop the block from every cache; write back if dirty."""
        self.stats.flushes += 1
        block = block_address(addr)
        txn = self._begin("flush", -1, block)
        was_dirty, writebacks = self.caches.flush(block)
        del keep_clean_copy  # reserved for a clwb variant; clflush drops
        if was_dirty:
            for writeback in writebacks:
                self._enqueue_data_writeback(writeback)
        self.cycle += _FLUSH_LATENCY
        txn.emit("proc", "flush", addr=block, value=float(was_dirty))
        txn.charge("op.flush", _FLUSH_LATENCY)
        self._finish(txn, path=None, latency=_FLUSH_LATENCY)
        return _FLUSH_LATENCY

    def drain_writes(self) -> None:
        """Fence: force the MC write queue to service everything queued."""
        txn = self._begin("drain", -1, None)
        txn.emit("proc", "drain")
        self.memctrl.drain(self.cycle)
        self.cycle += _STORE_BUFFER_LATENCY
        # The drain burst itself is posted background work; only the
        # fence's store-buffer cost lands on the issuing core.
        txn.charge("op.store_buffer", _STORE_BUFFER_LATENCY)
        self._finish(txn, path=None, latency=_STORE_BUFFER_LATENCY)

    def timed_read(self, addr: int, *, core: int = 0) -> int:
        """Read and return only the measured latency (rdtscp-style)."""
        return self.read(addr, core=core).latency

    # ------------------------------------------------------------------
    # Batch access path
    # ------------------------------------------------------------------

    def read_batch(self, addrs, *, core: int = 0) -> BatchResult:
        """Load every address in ``addrs`` (in order) as one batch."""
        return self.run_batch(AccessBatch.reads(addrs, core=core))

    def run_batch(self, batch: AccessBatch) -> BatchResult:
        """Execute a recorded operation vector.

        Semantically identical to replaying the batch through the scalar
        calls — same simulated cycles, cache/counter state and RNG draw
        order (the equivalence property test asserts this).  With any
        instrument attached (tracer, profiler, sampler, fault hook) the
        scalar loop runs outright so event streams match byte-for-byte;
        otherwise address decompositions are precomputed once per batch
        and uninstrumented L1 hits — the steady-state common case — are
        resolved inline, with every other operation delegated to the
        scalar reference path.
        """
        ops = batch.ops
        if (
            self.tracer is not None
            or self.profiler is not None
            or self.sampler is not None
            or self.mee.fault_hook is not None
        ):
            return BatchResult(ops, [self._run_op_scalar(op) for op in ops])

        # Per-batch decomposition table: addr -> (block, L1 set index).
        # L1 geometry is uniform across cores, so one table serves all.
        l1_geometry = self.caches.core_caches[0].l1
        block_mask = l1_geometry._block_mask
        block_shift = l1_geometry._block_shift
        num_sets = l1_geometry.num_sets
        table: dict[int, tuple[int, int]] = {}
        for op in ops:
            addr = op[1]
            if addr is not None and addr not in table:
                block = addr & block_mask
                table[addr] = (block, (block >> block_shift) % num_sets)

        core_caches = self.caches.core_caches
        l1_latency = self.caches.hit_latency[0]
        data_size = self.layout.data_size
        stats = self.stats
        path_counts = stats.path_counts
        plain = self._plain
        jitter = self.config.timer_jitter_sigma > 0
        zero_block = bytes(BLOCK_SIZE)
        results: list = []
        append = results.append
        for kind, addr, data, core in ops:
            if kind == OP_READ:
                if not 0 <= addr < data_size:
                    self._check_data_addr(addr)
                block, set_index = table[addr]
                l1 = core_caches[core].l1
                cache_set = l1._sets.get(set_index)
                way = (
                    cache_set.index_of.get(block)
                    if cache_set is not None
                    else None
                )
                if way is None:
                    append(self.read(addr, core=core))
                    continue
                # Inline L1 read hit: byte-identical to the scalar path.
                cache_set.policy.on_access(way)
                l1._hits.value += 1
                stats.reads += 1
                path_counts[AccessPath.L1_HIT] = (
                    path_counts.get(AccessPath.L1_HIT, 0) + 1
                )
                self.cycle += l1_latency
                latency = (
                    self._observed(l1_latency) if jitter else l1_latency
                )
                append(
                    AccessResult(
                        latency=latency,
                        path=AccessPath.L1_HIT,
                        cycle=self.cycle,
                        data=plain.get(block, zero_block),
                    )
                )
            elif kind == OP_WRITE:
                if not 0 <= addr < data_size:
                    self._check_data_addr(addr)
                block, set_index = table[addr]
                l1 = core_caches[core].l1
                cache_set = l1._sets.get(set_index)
                way = (
                    cache_set.index_of.get(block)
                    if cache_set is not None
                    else None
                )
                if way is None:
                    append(self.write(addr, data, core=core))
                    continue
                # Inline L1 write hit (scalar write hits skip path stats
                # and timer jitter — preserved exactly).
                plain[block] = (
                    plain.get(block, zero_block)
                    if data is None
                    else self._coerce_data(block, data)
                )
                cache_set.policy.on_access(way)
                cache_set.dirty[way] = True
                l1._hits.value += 1
                stats.writes += 1
                self.cycle += l1_latency
                append(
                    AccessResult(
                        latency=l1_latency,
                        path=AccessPath.L1_HIT,
                        cycle=self.cycle,
                    )
                )
            elif kind == OP_WRITE_THROUGH:
                append(self.write_through(addr, data, core=core))
            elif kind == OP_FLUSH:
                append(self.flush(addr))
            else:
                append(self.drain_writes())
        return BatchResult(ops, results)

    def _run_op_scalar(self, op) -> object:
        """Scalar fallback: one batch op through the reference path."""
        kind, addr, data, core = op
        if kind == OP_READ:
            return self.read(addr, core=core)
        if kind == OP_WRITE:
            return self.write(addr, data, core=core)
        if kind == OP_WRITE_THROUGH:
            return self.write_through(addr, data, core=core)
        if kind == OP_FLUSH:
            return self.flush(addr)
        return self.drain_writes()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_data_addr(self, addr: int) -> None:
        if not self.layout.is_protected_data(addr):
            raise ValueError(
                f"address {addr:#x} outside protected data region "
                f"(size {self.layout.data_size:#x})"
            )

    def _coerce_data(self, block: int, data: bytes | None) -> bytes:
        if data is None:
            return self._plain.get(block, bytes(BLOCK_SIZE))
        if len(data) > BLOCK_SIZE:
            raise ValueError("data exceeds one block")
        return bytes(data) + bytes(BLOCK_SIZE - len(data))

    def _handle_writebacks(self, writebacks: list[int]) -> None:
        for writeback in writebacks:
            self._enqueue_data_writeback(writeback)

    def _enqueue_data_writeback(self, block: int) -> None:
        self.mee.write_data(
            block, self._plain.get(block, bytes(BLOCK_SIZE)), self.cycle
        )

    @staticmethod
    def _classify(counter_hit: bool, tree_levels_missed: int) -> AccessPath:
        if counter_hit:
            return AccessPath.MEM_COUNTER_HIT
        if tree_levels_missed == 0:
            return AccessPath.MEM_TREE_HIT
        return AccessPath.MEM_TREE_MISS

    # ------------------------------------------------------------------
    # Introspection used by examples, tests and the analysis layer
    # ------------------------------------------------------------------

    def architectural_value(self, addr: int) -> bytes:
        """Software-visible value of a block (for test oracles)."""
        return self._plain.get(block_address(addr), bytes(BLOCK_SIZE))

    @property
    def metadata_cache(self):
        return self.mee.meta_cache

    @property
    def tree_metadata_cache(self):
        """The tree-node cache (same object unless split_metadata_caches)."""
        return self.mee.tree_cache
