"""`SecureProcessor` — the machine the victims run on and attacks target.

The processor composes the data-cache hierarchy, memory controller and
memory encryption engine, and exposes the software-visible operations the
paper's threat model assumes:

* ``read`` / ``write`` — ordinary accesses (write-allocate, write-back);
* ``write_through`` — a persisted store (clwb+fence style) that reaches the
  memory controller immediately, as in the persistent-memory applications
  and cache-cleansed victims of Section III;
* ``flush`` — clflush of one's own lines (cache cleansing);
* ``drain_writes`` — force the MC write queue to service, the primitive
  MetaLeak-C uses to control counter state;
* a global cycle clock advanced by every operation, so concurrently
  "running" attacker and victim calls observe each other through DRAM bank
  busy state (overflow bursts) and shared metadata-cache state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BLOCK_SIZE, SecureProcessorConfig
from repro.mem.block import block_address
from repro.mem.hierarchy import DataCacheSystem
from repro.mem.memctrl import MemoryController
from repro.proc.paths import AccessPath
from repro.secmem.engine import MemoryEncryptionEngine
from repro.trace.counters import CounterRegistry

_FLUSH_LATENCY = 40
_STORE_BUFFER_LATENCY = 6


@dataclass
class AccessResult:
    """What one processor-level access did and how long it took."""

    latency: int
    path: AccessPath
    cycle: int
    counter_hit: bool = False
    tree_levels_missed: int = 0
    data: bytes = b""
    # Critical-path cycle attribution (populated only while a profiler is
    # attached): component -> cycles, summing exactly to the access's
    # pre-jitter latency.  See ``repro.perf`` / docs/performance.md.
    breakdown: dict[str, int] | None = None


@dataclass
class ProcessorStats:
    reads: int = 0
    writes: int = 0
    flushes: int = 0
    path_counts: dict[AccessPath, int] = field(default_factory=dict)

    def count(self, path: AccessPath) -> None:
        self.path_counts[path] = self.path_counts.get(path, 0) + 1


class SecureProcessor:
    """A multi-core secure processor per Table I."""

    def __init__(self, config: SecureProcessorConfig | None = None) -> None:
        self.config = config or SecureProcessorConfig.sct_default()
        self.caches = DataCacheSystem(self.config)
        self.memctrl = MemoryController(self.config.memctrl, self.config.dram)
        self.mee = MemoryEncryptionEngine(self.config, self.memctrl)
        self.layout = self.mee.layout
        self.cycle = 0
        self.stats = ProcessorStats()
        # One machine-wide view over every component's counter registry,
        # mounted under dotted prefixes (``core0.l1.hits``, ``dram.reads``…).
        self.registry = CounterRegistry()
        for i, core in enumerate(self.caches.core_caches):
            self.registry.mount(f"core{i}.l1", core.l1.counters)
            self.registry.mount(f"core{i}.l2", core.l2.counters)
        for s, l3 in enumerate(self.caches.l3s):
            self.registry.mount(f"l3.socket{s}", l3.counters)
        self.registry.mount("memctrl", self.memctrl.counters)
        self.registry.mount("dram", self.memctrl.dram.counters)
        self.registry.mount("meta_cache", self.mee.meta_cache.counters)
        if self.mee.tree_cache is not self.mee.meta_cache:
            self.registry.mount("tree_cache", self.mee.tree_cache.counters)
        self.registry.mount("crypto", self.mee.cipher.counters)
        # Optional trace sink (see ``repro.trace``); None keeps every
        # instrumented path down to a single attribute test.
        self.tracer = None
        # Optional cycle attributor and metrics sampler (see ``repro.perf``);
        # same contract: None keeps hot paths to one attribute test each.
        self.profiler = None
        self.sampler = None
        # Architectural (software-visible) values of written blocks.
        self._plain: dict[int, bytes] = {}
        from repro.utils.rng import derive_rng

        self._timer_rng = derive_rng(self.config.seed, "timer")

    def attach_tracer(self, tracer) -> None:
        """Thread one trace sink through the whole machine.

        Binds the tracer's clock to this processor's cycle counter (so
        components that have no notion of time stamp events correctly) and
        attaches it to every cache, the memory controller, DRAM and the
        memory encryption engine.  ``None`` detaches everywhere.
        """
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self.cycle)
        for core in self.caches.core_caches:
            core.l1.tracer = tracer
            core.l2.tracer = tracer
        for l3 in self.caches.l3s:
            l3.tracer = tracer
        self.mee.attach_tracer(tracer)

    def attach_profiler(self, profiler) -> None:
        """Attach a cycle attributor (``repro.perf.CycleAttributor``).

        While attached, every software-visible operation reports its
        latency as a per-component breakdown whose sum equals the access's
        pre-jitter latency (the conservation guarantee).  ``None`` detaches
        and restores the zero-overhead path.
        """
        self.profiler = profiler

    def attach_sampler(self, sampler) -> None:
        """Attach a metrics sampler (``repro.perf.MetricsSampler``).

        The sampler snapshots ``self.registry`` every N simulated cycles,
        ticked from the operations that advance the machine clock.
        ``None`` detaches.
        """
        self.sampler = sampler
        if sampler is not None:
            sampler.on_cycle(self.cycle)

    def _observed(self, latency: int) -> int:
        """Latency as software measures it (with modeled timer noise)."""
        sigma = self.config.timer_jitter_sigma
        if sigma <= 0:
            return latency
        return max(1, round(latency + self._timer_rng.gauss(0, sigma)))

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def advance(self, cycles: int) -> None:
        """Let wall-clock time pass without issuing an access."""
        if cycles < 0:
            raise ValueError("cannot advance backwards")
        self.cycle += cycles
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)

    def quiesce(self) -> int:
        """Idle until all DRAM banks are free; returns cycles waited.

        Attackers do this before a timed read so the measurement reflects
        only the access path under test, not leftover bank occupancy from
        their own earlier traffic.  (It deliberately does not drain the
        write queue — that would perturb counter state.)
        """
        waited = max(0, self.memctrl.dram.max_busy_until() - self.cycle)
        self.cycle += waited
        return waited

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def read(self, addr: int, *, core: int = 0) -> AccessResult:
        """Load the block containing ``addr``."""
        self._check_data_addr(addr)
        self.stats.reads += 1
        block = block_address(addr)
        hier = self.caches.access(core, block, is_write=False)
        if hier.hit_level is not None:
            path = (AccessPath.L1_HIT, AccessPath.L2_HIT, AccessPath.L3_HIT)[
                hier.hit_level - 1
            ]
            self.stats.count(path)
            self.cycle += hier.latency
            if self.tracer is not None:
                self.tracer.emit(
                    "proc", "read", core=core, addr=block, value=float(hier.latency)
                )
            breakdown = None
            if self.profiler is not None:
                breakdown = self._profile_hit(
                    "read", path, hier, core=core, addr=block
                )
            if self.sampler is not None:
                self.sampler.on_cycle(self.cycle)
            return AccessResult(
                latency=self._observed(hier.latency),
                path=path,
                cycle=self.cycle,
                data=self._plain.get(block, bytes(BLOCK_SIZE)),
                breakdown=breakdown,
            )
        self._handle_writebacks(hier.writebacks)
        outcome = self.mee.read_data(
            block, self.cycle + hier.latency, breakdown=self.profiler is not None
        )
        for writeback in self.caches.fill(core, block, dirty=False):
            self._enqueue_data_writeback(writeback)
        latency = hier.latency + outcome.latency
        self.cycle += latency
        path = self._classify(outcome.counter_hit, outcome.tree_levels_missed)
        self.stats.count(path)
        if self.tracer is not None:
            self.tracer.emit(
                "proc", "read", core=core, addr=block, value=float(latency)
            )
        breakdown = None
        if self.profiler is not None:
            breakdown = self._profile_miss(
                "read", path, hier, outcome, latency, core=core, addr=block
            )
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)
        return AccessResult(
            latency=self._observed(latency),
            path=path,
            cycle=self.cycle,
            counter_hit=outcome.counter_hit,
            tree_levels_missed=outcome.tree_levels_missed,
            data=outcome.plaintext,
            breakdown=breakdown,
        )

    def write(
        self, addr: int, data: bytes | None = None, *, core: int = 0
    ) -> AccessResult:
        """Store to the block containing ``addr`` (write-allocate/back)."""
        self._check_data_addr(addr)
        self.stats.writes += 1
        block = block_address(addr)
        self._plain[block] = self._coerce_data(block, data)
        hier = self.caches.access(core, block, is_write=True)
        if hier.hit_level is not None:
            self.cycle += hier.latency
            path = (AccessPath.L1_HIT, AccessPath.L2_HIT, AccessPath.L3_HIT)[
                hier.hit_level - 1
            ]
            if self.tracer is not None:
                self.tracer.emit(
                    "proc", "write", core=core, addr=block, value=float(hier.latency)
                )
            breakdown = None
            if self.profiler is not None:
                breakdown = self._profile_hit(
                    "write", path, hier, core=core, addr=block
                )
            if self.sampler is not None:
                self.sampler.on_cycle(self.cycle)
            return AccessResult(
                latency=hier.latency, path=path, cycle=self.cycle,
                breakdown=breakdown,
            )
        self._handle_writebacks(hier.writebacks)
        # Fetch-for-write: the miss path is the same as a read.
        outcome = self.mee.read_data(
            block, self.cycle + hier.latency, breakdown=self.profiler is not None
        )
        for writeback in self.caches.fill(core, block, dirty=True):
            self._enqueue_data_writeback(writeback)
        latency = hier.latency + outcome.latency
        self.cycle += latency
        path = self._classify(outcome.counter_hit, outcome.tree_levels_missed)
        self.stats.count(path)
        if self.tracer is not None:
            self.tracer.emit(
                "proc", "write", core=core, addr=block, value=float(latency)
            )
        breakdown = None
        if self.profiler is not None:
            breakdown = self._profile_miss(
                "write", path, hier, outcome, latency, core=core, addr=block
            )
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)
        return AccessResult(
            latency=latency,
            path=path,
            cycle=self.cycle,
            counter_hit=outcome.counter_hit,
            tree_levels_missed=outcome.tree_levels_missed,
            breakdown=breakdown,
        )

    def write_through(
        self, addr: int, data: bytes | None = None, *, core: int = 0
    ) -> AccessResult:
        """Persisted store: bypasses the caches and posts to the MC now."""
        self._check_data_addr(addr)
        self.stats.writes += 1
        block = block_address(addr)
        self._plain[block] = self._coerce_data(block, data)
        self.caches.flush(block)  # drop any stale cached copy
        enqueue = self.mee.write_data(block, self._plain[block], self.cycle)
        latency = _STORE_BUFFER_LATENCY + enqueue
        self.cycle += latency
        if self.tracer is not None:
            self.tracer.emit(
                "proc", "write_through", core=core, addr=block, value=float(latency)
            )
        breakdown = None
        if self.profiler is not None:
            breakdown = {"op.store_buffer": _STORE_BUFFER_LATENCY,
                         "op.enqueue": enqueue}
            self.profiler.on_access(
                op="write_through", path=None, core=core, addr=block,
                cycle=self.cycle, latency=latency, parts=breakdown,
            )
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)
        return AccessResult(
            latency=latency, path=AccessPath.L1_HIT, cycle=self.cycle,
            breakdown=breakdown,
        )

    def flush(self, addr: int, *, keep_clean_copy: bool = False) -> int:
        """clflush: drop the block from every cache; write back if dirty."""
        self.stats.flushes += 1
        block = block_address(addr)
        was_dirty, writebacks = self.caches.flush(block)
        del keep_clean_copy  # reserved for a clwb variant; clflush drops
        if was_dirty:
            for writeback in writebacks:
                self._enqueue_data_writeback(writeback)
        self.cycle += _FLUSH_LATENCY
        if self.tracer is not None:
            self.tracer.emit(
                "proc", "flush", addr=block, value=float(was_dirty)
            )
        if self.profiler is not None:
            self.profiler.on_access(
                op="flush", path=None, core=-1, addr=block, cycle=self.cycle,
                latency=_FLUSH_LATENCY, parts={"op.flush": _FLUSH_LATENCY},
            )
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)
        return _FLUSH_LATENCY

    def drain_writes(self) -> None:
        """Fence: force the MC write queue to service everything queued."""
        if self.tracer is not None:
            self.tracer.emit("proc", "drain")
        self.memctrl.drain(self.cycle)
        self.cycle += _STORE_BUFFER_LATENCY
        if self.profiler is not None:
            # The drain burst itself is posted background work; only the
            # fence's store-buffer cost lands on the issuing core.
            self.profiler.on_access(
                op="drain", path=None, core=-1, addr=None, cycle=self.cycle,
                latency=_STORE_BUFFER_LATENCY,
                parts={"op.store_buffer": _STORE_BUFFER_LATENCY},
            )
        if self.sampler is not None:
            self.sampler.on_cycle(self.cycle)

    def timed_read(self, addr: int, *, core: int = 0) -> int:
        """Read and return only the measured latency (rdtscp-style)."""
        return self.read(addr, core=core).latency

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_data_addr(self, addr: int) -> None:
        if not self.layout.is_protected_data(addr):
            raise ValueError(
                f"address {addr:#x} outside protected data region "
                f"(size {self.layout.data_size:#x})"
            )

    def _coerce_data(self, block: int, data: bytes | None) -> bytes:
        if data is None:
            return self._plain.get(block, bytes(BLOCK_SIZE))
        if len(data) > BLOCK_SIZE:
            raise ValueError("data exceeds one block")
        return bytes(data) + bytes(BLOCK_SIZE - len(data))

    def _handle_writebacks(self, writebacks: list[int]) -> None:
        for writeback in writebacks:
            self._enqueue_data_writeback(writeback)

    def _enqueue_data_writeback(self, block: int) -> None:
        self.mee.write_data(
            block, self._plain.get(block, bytes(BLOCK_SIZE)), self.cycle
        )

    def _profile_hit(
        self, op: str, path: AccessPath, hier, *, core: int, addr: int
    ) -> dict[str, int]:
        """Report a cache-hit access to the attached profiler."""
        parts = {f"cache.l{hier.hit_level}_hit": hier.latency}
        self.profiler.on_access(
            op=op, path=path, core=core, addr=addr, cycle=self.cycle,
            latency=hier.latency, parts=parts,
        )
        return parts

    def _profile_miss(
        self, op: str, path: AccessPath, hier, outcome, latency: int,
        *, core: int, addr: int,
    ) -> dict[str, int]:
        """Report a memory-path access: hierarchy lookup + MEE breakdown."""
        parts = {"cache.lookup": hier.latency}
        parts.update(outcome.breakdown)
        self.profiler.on_access(
            op=op, path=path, core=core, addr=addr, cycle=self.cycle,
            latency=latency, parts=parts, shadowed=outcome.shadowed,
        )
        return parts

    @staticmethod
    def _classify(counter_hit: bool, tree_levels_missed: int) -> AccessPath:
        if counter_hit:
            return AccessPath.MEM_COUNTER_HIT
        if tree_levels_missed == 0:
            return AccessPath.MEM_TREE_HIT
        return AccessPath.MEM_TREE_MISS

    # ------------------------------------------------------------------
    # Introspection used by examples, tests and the analysis layer
    # ------------------------------------------------------------------

    def architectural_value(self, addr: int) -> bytes:
        """Software-visible value of a block (for test oracles)."""
        return self._plain.get(block_address(addr), bytes(BLOCK_SIZE))

    @property
    def metadata_cache(self):
        return self.mee.meta_cache

    @property
    def tree_metadata_cache(self):
        """The tree-node cache (same object unless split_metadata_caches)."""
        return self.mee.tree_cache
