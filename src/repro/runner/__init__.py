"""Hardened experiment runner: timeouts, retries, checkpoint/resume.

Paper-scale experiment batches fail in boring ways — one figure hangs,
one trips an assertion, the machine reboots mid-run.  This package wraps
a list of named experiment callables in per-task timeouts, bounded
retries with exponential backoff (reseeding the experiment RNG between
attempts when the callable accepts a ``seed``), and a JSON manifest that
checkpoints every completed task so an interrupted batch resumes where
it stopped instead of starting over.  One crashing task never takes the
batch down: it becomes a structured failure record and the rest run.
"""

from repro.runner.core import (
    BatchReport,
    ExperimentRunner,
    TaskRecord,
    TaskSpec,
    TaskTimeout,
    load_manifest,
)

__all__ = [
    "BatchReport",
    "ExperimentRunner",
    "TaskRecord",
    "TaskSpec",
    "TaskTimeout",
    "load_manifest",
]
