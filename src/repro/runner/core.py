"""The resumable experiment runner (see package docstring).

Timeouts use ``SIGALRM`` when available (CPython main thread on Unix),
which interrupts even a tight pure-Python loop; elsewhere the task runs
on a worker thread and is abandoned on expiry — the result is discarded
either way and the task is recorded as ``timeout``.  The manifest is
written atomically (temp file + ``os.replace``) after *every* task, so
a crash at any point leaves a loadable checkpoint.
"""

from __future__ import annotations

import inspect
import json
import os
import signal
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs

MANIFEST_VERSION = 1

# Record statuses a task can end in.  ``ok`` counts as success whether it
# ran now or was restored from the manifest (``cached`` flag tells them
# apart); everything else is some flavour of not-done.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped"


class TaskTimeout(Exception):
    """A task exceeded its wall-clock budget.

    ``leaked_thread`` names the abandoned worker thread when the
    thread-fallback path expired: the thread cannot be killed and keeps
    running (it may keep mutating shared state) until it finishes or
    the process exits — it is a daemon thread, so it never blocks
    interpreter shutdown, but callers should know the leak happened.
    """

    leaked_thread: str | None = None


@dataclass(frozen=True)
class TaskSpec:
    """One named experiment to run: a callable plus its arguments."""

    name: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    timeout: float | None = None  # overrides the runner default
    retries: int | None = None  # overrides the runner default


@dataclass
class TaskRecord:
    """Structured outcome of one task (what the manifest persists)."""

    name: str
    status: str
    attempts: int = 0
    elapsed: float = 0.0
    error: str = ""
    detail: str = ""  # traceback tail for failures
    seed: int | None = None  # reseed used by the successful/last attempt
    cached: bool = False  # restored from a previous run's manifest
    # Wall-clock lifecycle (epoch seconds; 0.0 = not recorded).  queue-wait
    # is started_at - queued_at; the span layer reads these rather than
    # re-deriving them from its own clocks.
    queued_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    result: Any = None  # in-memory only, never serialised

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued before the first attempt started."""
        if self.queued_at and self.started_at:
            return max(0.0, self.started_at - self.queued_at)
        return 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 3),
            "error": self.error,
            "detail": self.detail,
            "seed": self.seed,
            "queued_at": round(self.queued_at, 3),
            "started_at": round(self.started_at, 3),
            "finished_at": round(self.finished_at, 3),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskRecord":
        return cls(
            name=str(data.get("name", "")),
            status=str(data.get("status", STATUS_FAILED)),
            attempts=int(data.get("attempts", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
            error=str(data.get("error", "")),
            detail=str(data.get("detail", "")),
            seed=data.get("seed"),
            queued_at=float(data.get("queued_at", 0.0)),
            started_at=float(data.get("started_at", 0.0)),
            finished_at=float(data.get("finished_at", 0.0)),
        )


@dataclass
class BatchReport:
    """Aggregate outcome of one batch."""

    records: list[TaskRecord] = field(default_factory=list)

    def record(self, name: str) -> TaskRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(f"no task named {name!r} in this batch")

    @property
    def ok(self) -> list[TaskRecord]:
        return [r for r in self.records if r.ok]

    @property
    def failed(self) -> list[TaskRecord]:
        return [r for r in self.records if r.status in (STATUS_FAILED, STATUS_TIMEOUT)]

    @property
    def skipped(self) -> list[TaskRecord]:
        return [r for r in self.records if r.status == STATUS_SKIPPED]

    @property
    def status(self) -> str:
        """``pass`` (everything ok), ``fail`` (nothing ok) or ``partial``."""
        if not self.records or all(r.ok for r in self.records):
            return "pass"
        if any(r.ok for r in self.records):
            return "partial"
        return "fail"

    def summary(self) -> str:
        lines = [
            f"batch {self.status}: {len(self.ok)}/{len(self.records)} ok, "
            f"{len(self.failed)} failed, {len(self.skipped)} skipped"
        ]
        for record in self.records:
            flags = " (cached)" if record.cached else ""
            tail = f" — {record.error}" if record.error else ""
            lines.append(
                f"  {record.name:<20} {record.status:<8} "
                f"attempts={record.attempts} {record.elapsed:.1f}s{flags}{tail}"
            )
        return "\n".join(lines)


def load_manifest(path: str | os.PathLike[str]) -> dict[str, TaskRecord]:
    """Load a checkpoint manifest; missing/corrupt files load as empty."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
        return {}
    tasks = data.get("tasks", {})
    records: dict[str, TaskRecord] = {}
    if isinstance(tasks, dict):
        for name, entry in tasks.items():
            if isinstance(entry, dict):
                entry = dict(entry, name=name)
                records[name] = TaskRecord.from_dict(entry)
    return records


def _write_manifest(
    path: str | os.PathLike[str], records: dict[str, TaskRecord]
) -> None:
    payload = {
        "version": MANIFEST_VERSION,
        "tasks": {name: record.to_dict() for name, record in records.items()},
    }
    tmp = f"{os.fspath(path)}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _accepts_seed(fn: Callable[..., Any]) -> bool:
    """Can ``fn`` be handed a ``seed=`` keyword for a reseeded retry?"""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    for param in params.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == "seed" and param.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def _call_with_timeout(
    fn: Callable[..., Any], kwargs: dict[str, Any], timeout: float | None
) -> Any:
    """Run ``fn(**kwargs)``, raising :class:`TaskTimeout` on expiry."""
    if timeout is None or timeout <= 0:
        return fn(**kwargs)
    use_alarm = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:

        def _on_alarm(signum, frame):  # noqa: ARG001 - signal signature
            raise TaskTimeout(f"timed out after {timeout:g}s")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return fn(**kwargs)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

    # Fallback (non-main thread / platforms without SIGALRM): run on a
    # daemon worker and abandon it on expiry.  The worker cannot be
    # killed, but its eventual result is discarded; daemon=True keeps
    # the leaked thread from blocking interpreter shutdown.
    box: dict[str, Any] = {}

    def _target() -> None:
        try:
            box["result"] = fn(**kwargs)
        except BaseException as error:  # noqa: BLE001 - transported below
            box["error"] = error

    worker = threading.Thread(
        target=_target, daemon=True, name=f"runner-task-{id(box):x}"
    )
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        timeout_error = TaskTimeout(
            f"timed out after {timeout:g}s (worker abandoned)"
        )
        timeout_error.leaked_thread = worker.name
        raise timeout_error
    if "error" in box:
        raise box["error"]
    return box.get("result")


class ExperimentRunner:
    """Run a batch of :class:`TaskSpec` with isolation and checkpointing."""

    def __init__(
        self,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 1.0,
        reseed_base: int | None = None,
        manifest_path: str | os.PathLike[str] | None = None,
        resume: bool = False,
        fail_fast: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.reseed_base = reseed_base
        self.manifest_path = manifest_path
        self.resume = resume
        self.fail_fast = fail_fast
        self._sleep = sleep
        self._clock = clock
        self._warned_thread_leak = False

    # ------------------------------------------------------------------

    def run(
        self,
        specs: list[TaskSpec],
        *,
        on_record: Callable[[TaskRecord], None] | None = None,
    ) -> BatchReport:
        """Run every spec; ``on_record`` streams each outcome as it lands."""
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique within a batch")
        manifest: dict[str, TaskRecord] = {}
        if self.manifest_path is not None and self.resume:
            manifest = load_manifest(self.manifest_path)
        report = BatchReport()
        abort = False
        batch_queued_at = time.time()
        for spec in specs:
            previous = manifest.get(spec.name)
            if previous is not None and previous.ok:
                record = previous
                record.cached = True
            elif abort:
                record = TaskRecord(
                    name=spec.name,
                    status=STATUS_SKIPPED,
                    error="skipped (fail-fast)",
                )
            else:
                record = self._run_one(spec, queued_at=batch_queued_at)
            report.records.append(record)
            manifest[spec.name] = record
            if self.manifest_path is not None:
                _write_manifest(self.manifest_path, manifest)
            if on_record is not None:
                on_record(record)
            if self.fail_fast and record.status in (STATUS_FAILED, STATUS_TIMEOUT):
                abort = True
        return report

    # ------------------------------------------------------------------

    def _run_one(
        self, spec: TaskSpec, *, queued_at: float | None = None
    ) -> TaskRecord:
        timeout = spec.timeout if spec.timeout is not None else self.timeout
        retries = spec.retries if spec.retries is not None else self.retries
        reseedable = self.reseed_base is not None and _accepts_seed(spec.fn)
        record = TaskRecord(name=spec.name, status=STATUS_FAILED)
        record.queued_at = queued_at if queued_at is not None else time.time()
        record.started_at = time.time()
        started = self._clock()
        for attempt in range(retries + 1):
            record.attempts = attempt + 1
            kwargs = dict(spec.kwargs)
            if reseedable and attempt > 0:
                # Retry under fresh randomness: a flaky statistical
                # experiment should not re-roll the exact same trace.
                record.seed = (self.reseed_base or 0) + attempt
                kwargs.setdefault("seed", record.seed)
            attempt_span = obs.start_span(
                "task.attempt", kind="task.attempt",
                attrs={"task": spec.name, "attempt": attempt + 1,
                       "pid": os.getpid()},
            )
            if record.seed is not None:
                attempt_span.set("seed", record.seed)
            with attempt_span:
                try:
                    record.result = _call_with_timeout(spec.fn, kwargs, timeout)
                except TaskTimeout as error:
                    record.status = STATUS_TIMEOUT
                    record.error = str(error)
                    record.detail = ""
                    attempt_span.outcome = STATUS_TIMEOUT
                    attempt_span.set("error", record.error)
                    if error.leaked_thread is not None:
                        # The thread-fallback path cannot kill the expired
                        # task: record the leak so the manifest shows it,
                        # and warn once per runner.
                        record.detail = (
                            f"abandoned daemon worker thread "
                            f"{error.leaked_thread!r} may still be running "
                            f"and mutating shared state"
                        )
                        if not self._warned_thread_leak:
                            self._warned_thread_leak = True
                            warnings.warn(
                                "task timeout used the thread-fallback path: "
                                "the expired task's daemon thread cannot be "
                                "killed and keeps running in the background "
                                "(run on the main thread for SIGALRM-based "
                                "hard timeouts)",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                except KeyboardInterrupt:
                    raise
                except BaseException as error:  # crash isolation
                    record.status = STATUS_FAILED
                    record.error = f"{type(error).__name__}: {error}"
                    record.detail = "".join(
                        traceback.format_exception(error)
                    )[-2000:]
                    attempt_span.outcome = STATUS_FAILED
                    attempt_span.set("error", record.error[:200])
                else:
                    record.status = STATUS_OK
                    record.error = ""
                    record.detail = ""
            if record.status == STATUS_OK:
                break
            if attempt < retries and self.backoff > 0:
                self._sleep(self.backoff * (2**attempt))
        record.elapsed = self._clock() - started
        record.finished_at = time.time()
        return record
