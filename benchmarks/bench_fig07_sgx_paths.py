"""Figure 7: read-latency distributions on the SGX (SIT) model."""

from conftest import run_once

from repro.analysis.figures import fig6_access_paths, fig7_sgx_paths


def test_fig7_sgx_paths(benchmark, record_figure):
    result = run_once(benchmark, fig7_sgx_paths, samples=60)
    record_figure(result)
    measured = [row.measured for row in result.rows]
    assert measured == sorted(measured)
    # Paper: SGX reads span ~150-700 cycles; the all-miss walk is serial
    # and lands around 650.
    deep = result.row("Path-4 (all levels missed)").measured
    assert 500 <= deep <= 900
    leaf_hit = result.row("Path-3 (tree leaf hit)").measured
    assert 180 <= leaf_hit <= 330


def test_fig7_sgx_range_wider_than_sct(benchmark, record_figure):
    sct = fig6_access_paths(samples=20)
    sgx = run_once(benchmark, fig7_sgx_paths, samples=20)
    assert (
        sgx.row("Path-4 (all levels missed)").measured
        > sct.row("Path-4 (all levels missed)").measured
    )
