"""Figure 16: RSA secret-exponent recovery (libgcrypt square-and-multiply)."""

from conftest import run_once

from repro.analysis.figures import fig16_rsa


def test_fig16_rsa_exponent_recovery(benchmark, record_figure):
    result = run_once(benchmark, fig16_rsa, exponent_bits=192)
    record_figure(result)
    # Paper: 91.2% (SGX) and 95.1% (SCT) exponent recovery.
    sgx = result.row("SGX exponent bit accuracy").measured
    sct = result.row("SCT exponent bit accuracy").measured
    assert sgx >= 0.82
    assert sct >= 0.93
    # The cleaner simulated design recovers more than noisy SGX hardware.
    assert sct > sgx
