"""Table I: the machine configurations under study.

Not a timing benchmark — verifies that the shipped presets implement the
exact Table-I parameters and records them alongside the benchmark run.
"""

from conftest import run_once

from repro.analysis.report import FigureResult
from repro.config import KIB, MIB, SecureProcessorConfig, TreeKind


def test_table1_presets(benchmark, record_figure):
    def build():
        return (
            SecureProcessorConfig.sct_default(),
            SecureProcessorConfig.ht_default(),
            SecureProcessorConfig.sgx_default(),
        )

    sct, ht, sgx = run_once(benchmark, build)

    result = FigureResult(figure="Table I", title="Machine configurations")
    result.add("cores", sct.cores, 4)
    result.add("L1", sct.l1.size_bytes // KIB, 32, "KiB, 8-way")
    result.add("L2", sct.l2.size_bytes // MIB, 1, "MiB, 4-way")
    result.add("L3", sct.l3.size_bytes // MIB, 8, "MiB, 16-way")
    result.add(
        "metadata cache", sct.metadata_cache.size_bytes // KIB, 256, "KiB, 8-way"
    )
    result.add("AES latency", sct.crypto.aes_latency, 20, "cycles")
    result.add("SC major bits", sct.counters.major_bits, 64)
    result.add("SC minor bits", sct.counters.minor_bits, 7)
    result.add("SCT arity L0", sct.tree.arities[0], 32)
    result.add("SCT arity L1+", sct.tree.arities[1], 16)
    result.add("SCT levels", sct.tree.levels, 6)
    result.add("HT arity", ht.tree.arities[0], 8)
    result.add("HT levels", ht.tree.levels, 6)
    result.add("SGX counter bits", sgx.counters.monolithic_bits, 56)
    result.add("SIT arity", sgx.tree.arities[0], 8)
    result.add("SIT off-chip levels", sgx.tree.levels, "3 (+on-chip L3)")
    record_figure(result)

    assert sct.l1.ways == 8 and sct.l2.ways == 4 and sct.l3.ways == 16
    assert sct.tree.kind is TreeKind.SPLIT_COUNTER
    assert ht.tree.kind is TreeKind.HASH
    assert sgx.tree.kind is TreeKind.SGX
    assert sct.tree.arities == (32, 16, 16, 16, 16, 16)
    assert sgx.tree.arities == (8, 8, 8)
    for row in result.rows:
        if isinstance(row.paper, (int, float)):
            assert row.measured == row.paper, row.label
