"""Figure 8: memory latency bands with and without tree-counter overflow."""

from conftest import run_once

from repro.analysis.figures import fig8_overflow_bands


def test_fig8_overflow_bands(benchmark, record_figure):
    result = run_once(benchmark, fig8_overflow_bands, cycles=4)
    record_figure(result)
    # Shape: two clean bands; the overflow burst dwarfs the quiet band
    # (paper: ~2000 cycles apart).
    separation = result.row("band separation").measured
    assert separation >= 800
    quiet_max = result.row("no-overflow band (max)").measured
    overflow_median = result.row("overflow band (median)").measured
    assert overflow_median > 2 * quiet_max
