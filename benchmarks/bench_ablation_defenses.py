"""Ablation A3: which defenses stop MetaLeak-T (Sections IX-A / IX-C)."""

from conftest import run_once

from repro.analysis.figures import ablation_defenses


def test_ablation_defenses(benchmark, record_figure):
    result = run_once(benchmark, ablation_defenses, bits=80)
    record_figure(result)
    baseline = result.row("baseline (no defense)").measured
    partitioned = result.row("disjoint LLCs (cross-socket)").measured
    isolated = result.row("per-domain isolated trees").measured
    # Data-cache partitioning leaves the metadata channel intact...
    assert baseline >= 0.95
    assert partitioned >= 0.95
    # ...while per-domain trees collapse it to coin flipping.
    assert isolated <= 0.75
