"""Figure 17: mbedTLS key-loading shift/sub access detection."""

from conftest import run_once

from repro.analysis.figures import fig17_mbedtls


def test_fig17_mbedtls_detection(benchmark, record_figure):
    result = run_once(benchmark, fig17_mbedtls, secret_bits=192)
    record_figure(result)
    # Paper: 90.7% overall detection of Shift and Sub accesses.
    assert result.row("overall detection accuracy").measured >= 0.85
    assert result.row("shift detection").measured >= 0.8
    assert result.row("sub detection").measured >= 0.8
    # Beyond the paper: exact key recovery, verified against public n.
    assert result.row("exact phi recovery (majority-voted)").measured == "yes"
