"""Secure-memory slowdown context (not a paper figure — a model guard)."""

from conftest import run_once

from repro.analysis.overhead import overhead_study


def test_overhead_study(benchmark, record_figure):
    result = run_once(benchmark, overhead_study, accesses=300)
    record_figure(result)
    for design in ("HT", "SCT"):
        for pattern in ("seq-read", "stride-read", "rand-read"):
            slowdown = result.row(f"{design} {pattern} slowdown").measured
            # Protection must cost something on memory-bound reads, and
            # nothing absurd (model-sanity band).
            assert 1.0 <= slowdown <= 3.0
    # Posted writes hide security work from the issuing core.
    assert result.row("SCT seq-write slowdown").measured <= 1.2
