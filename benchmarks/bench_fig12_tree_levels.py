"""Figure 12: mEvict+mReload interval & coverage as the tree level rises."""

from conftest import run_once

from repro.analysis.figures import fig12_tree_levels


def test_fig12_tree_levels(benchmark, record_figure):
    result = run_once(benchmark, fig12_tree_levels, levels=(0, 1, 2, 3), rounds=40)
    record_figure(result)
    intervals = [
        result.row(f"L{level} interval").measured for level in (0, 1, 2, 3)
    ]
    coverages = [
        result.row(f"L{level} coverage").measured for level in (0, 1, 2, 3)
    ]
    # Shape: temporal resolution decreases (interval grows) with level...
    assert intervals == sorted(intervals)
    # ...while spatial coverage grows exponentially (arity 16 per level).
    for lower, upper in zip(coverages, coverages[1:]):
        assert upper == lower * 16
    # Leaf coverage: one SCT L0 node covers 32 pages = 128 KiB.
    assert coverages[0] == 128
