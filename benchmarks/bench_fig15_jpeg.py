"""Figure 15 + Section VIII-A2: libjpeg image stealing."""

from conftest import run_once

from repro.analysis.figures import fig15_jpeg


def test_fig15_image_stealing(benchmark, record_figure):
    from conftest import RESULTS_DIR

    result = run_once(
        benchmark,
        fig15_jpeg,
        images=("circles", "stripes", "text"),
        size=32,
        noise_reads=2,
        include_metaleak_c=True,
        save_dir=str(RESULTS_DIR / "fig15_images"),
    )
    record_figure(result)
    # Paper: 94.3% stealing accuracy (MetaLeak-T), reconstructions close to
    # the oracle; 97.2% zero-element recovery (MetaLeak-C).
    mean_acc = result.row("MetaLeak-T mean stealing accuracy").measured
    assert mean_acc >= 0.90
    zero_acc = result.row("MetaLeak-C zero-element recovery").measured
    assert zero_acc >= 0.90
    for name in ("circles", "stripes", "text"):
        assert result.row(f"{name}: stealing accuracy").measured >= 0.85
