"""Ablation A5: MAC placement shifts latency, never the channel."""

from conftest import run_once

from repro.analysis.figures import ablation_mac_placement


def test_ablation_mac_placement(benchmark, record_figure):
    result = run_once(benchmark, ablation_mac_placement, bits=60)
    record_figure(result)
    ecc = result.row("MAC in ECC (Synergy): Path-2 baseline").measured
    classical = result.row("separate MAC read: Path-2 baseline").measured
    # The classical design pays an extra memory read per access...
    assert classical > ecc + 50
    # ...but authentication is constant-latency: the channel is untouched.
    assert result.row("MAC in ECC (Synergy): accuracy").measured >= 0.95
    assert result.row("separate MAC read: accuracy").measured >= 0.95
