"""Ablation A4: the channel exists in every integrity-tree design."""

from conftest import run_once

from repro.analysis.figures import ablation_tree_designs


def test_ablation_tree_designs(benchmark, record_figure):
    result = run_once(benchmark, ablation_tree_designs, bits=80)
    record_figure(result)
    assert result.row("SCT (split-counter tree)").measured >= 0.95
    assert result.row("HT (hash tree / BMT)").measured >= 0.95
    assert result.row("SIT (SGX tree)").measured >= 0.95
