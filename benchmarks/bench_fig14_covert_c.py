"""Figure 14: MetaLeak-C covert channel — 7-bit symbol transmissions."""

from conftest import run_once

from repro.analysis.figures import fig14_covert_c


def test_fig14_covert_channel(benchmark, record_figure):
    result = run_once(benchmark, fig14_covert_c, symbols=150)
    record_figure(result)
    # Paper: 99.7% average symbol accuracy.
    assert result.row("symbol accuracy").measured >= 0.96
