"""Figure 18: target eviction accuracy under MIRAGE cache randomization."""

from conftest import run_once

from repro.analysis.figures import fig18_mirage


def test_fig18_mirage_eviction(benchmark, record_figure):
    result = run_once(
        benchmark,
        fig18_mirage,
        access_counts=(1000, 3000, 5000, 7000, 9000, 12000),
        trials=40,
    )
    record_figure(result)
    curve = [row.measured for row in result.rows]
    # Shape: monotone-ish rise; thousands of random accesses suffice to
    # evict the target despite randomization (paper: >90% around 7000).
    assert curve[0] < 0.5
    assert curve[-1] >= 0.9
    assert max(curve[3], curve[4]) >= 0.7  # 7000-9000 accesses region
