"""Ablation A6: split counter/tree caches don't stop the channel."""

from conftest import run_once

from repro.analysis.figures import ablation_split_caches


def test_ablation_split_caches(benchmark, record_figure):
    result = run_once(benchmark, ablation_split_caches, bits=60)
    record_figure(result)
    assert result.row("combined 256K: accuracy").measured >= 0.95
    assert result.row("split 128K+128K: accuracy").measured >= 0.95
