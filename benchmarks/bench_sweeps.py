"""Design-space sweeps (Sections IV/V/IX discussion points)."""

from conftest import run_once

from repro.analysis.sweeps import (
    sweep_metadata_cache_size,
    sweep_minor_counter_bits,
    sweep_noise_intensity,
    sweep_replacement_policy,
    sweep_step_interval,
)


def test_sweep_metadata_cache_size(benchmark, record_figure):
    result = run_once(benchmark, sweep_metadata_cache_size, (64, 256, 512), 40)
    record_figure(result)
    for size in (64, 256, 512):
        assert result.row(f"{size} KiB accuracy").measured >= 0.9


def test_sweep_replacement_policy(benchmark, record_figure):
    result = run_once(benchmark, sweep_replacement_policy, 40)
    record_figure(result)
    # The channel survives every policy; randomization may cost a little.
    assert result.row("lru accuracy").measured >= 0.9
    assert result.row("plru accuracy").measured >= 0.8
    assert result.row("random accuracy").measured >= 0.6


def test_sweep_minor_counter_bits(benchmark, record_figure):
    result = run_once(benchmark, sweep_minor_counter_bits, (5, 6, 7))
    record_figure(result)
    for bits in (5, 6, 7):
        assert result.row(f"{bits}-bit wrap bumps").measured == 2**bits - 1


def test_sweep_step_interval(benchmark, record_figure):
    result = run_once(benchmark, sweep_step_interval, (1, 2, 4), 64)
    record_figure(result)
    fine = result.row("interval=1 bit accuracy").measured
    coarse = result.row("interval=4 bit accuracy").measured
    assert fine >= 0.95
    assert fine > coarse  # fine-grained stepping is what enables recovery


def test_sweep_noise_intensity(benchmark, record_figure):
    result = run_once(benchmark, sweep_noise_intensity, (0, 16), 40)
    record_figure(result)
    quiet = result.row("0 noise reads/step").measured
    noisy = result.row("16 noise reads/step").measured
    assert quiet >= noisy  # monotone degradation
    assert quiet >= 0.95
