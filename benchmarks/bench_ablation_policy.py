"""Ablation A2: the channel exists under both tree-update policies."""

from conftest import run_once

from repro.analysis.figures import ablation_update_policy


def test_ablation_update_policy(benchmark, record_figure):
    result = run_once(benchmark, ablation_update_policy, bits=80)
    record_figure(result)
    assert result.row("lazy policy accuracy").measured >= 0.95
    assert result.row("eager policy accuracy").measured >= 0.95
