"""Figure 6: read-latency distributions across access paths (SCT)."""

from conftest import run_once

from repro.analysis.figures import fig6_access_paths


def test_fig6_access_paths(benchmark, record_figure):
    result = run_once(benchmark, fig6_access_paths, samples=60)
    record_figure(result)
    # Shape: strictly increasing latency across deeper paths.
    measured = [row.measured for row in result.rows]
    assert measured == sorted(measured)
    # Bands must be separable: each deeper metadata path costs visibly more.
    p2 = result.row("Path-2 (ctr hit)").measured
    p3 = result.row("Path-3 (tree leaf hit)").measured
    p4 = result.row("Path-4 (all levels missed)").measured
    assert p3 - p2 >= 30
    assert p4 - p3 >= 100
