"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure via the
``repro.analysis.figures`` harness, records the paper-vs-measured table
under ``benchmarks/results/``, echoes it to the terminal, and asserts the
figure's *shape* claims (ordering, separability, who-wins) — absolute
cycle counts are simulator-specific by design.

Each recorded figure also captures host-side cost (wall time since the
test started, process peak RSS): a footer on the ``.txt`` table plus one
JSON line in ``results/trajectory.jsonl``, so figure-generation cost can
be tracked across commits alongside the ``repro bench`` suite.
"""

from __future__ import annotations

import json
import pathlib
import resource
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_test_started_at = 0.0


def pytest_runtest_setup(item):
    global _test_started_at
    _test_started_at = time.perf_counter()


@pytest.fixture(scope="session")
def record_figure():
    """Persist and echo a FigureResult; returns the rendered table."""
    from repro.analysis.report import format_result

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result):
        elapsed = time.perf_counter() - _test_started_at
        peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        text = format_result(result)
        name = result.figure.lower().replace(" ", "_") + ".txt"
        footer = (
            f"host wall time: {elapsed:.2f} s   peak RSS: {peak_rss_kb} KB"
        )
        (RESULTS_DIR / name).write_text(text + "\n" + footer + "\n")
        with (RESULTS_DIR / "trajectory.jsonl").open("a") as fh:
            fh.write(json.dumps({
                "figure": result.figure,
                "title": result.title,
                "host_wall_time_s": round(elapsed, 3),
                "peak_rss_kb": peak_rss_kb,
            }, sort_keys=True) + "\n")
        print("\n" + text)
        return text

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
