"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure via the
``repro.analysis.figures`` harness, records the paper-vs-measured table
under ``benchmarks/results/``, echoes it to the terminal, and asserts the
figure's *shape* claims (ordering, separability, who-wins) — absolute
cycle counts are simulator-specific by design.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_figure():
    """Persist and echo a FigureResult; returns the rendered table."""
    from repro.analysis.report import format_result

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result):
        text = format_result(result)
        name = result.figure.lower().replace(" ", "_") + ".txt"
        (RESULTS_DIR / name).write_text(text + "\n")
        print("\n" + text)
        return text

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
