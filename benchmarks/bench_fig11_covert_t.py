"""Figure 11: MetaLeak-T covert channel — 1000-bit transmissions."""

from conftest import run_once

from repro.analysis.figures import _machine, _random_bits, fig11_covert_t
from repro.attacks.covert import CovertChannelT


def test_fig11_covert_channel(benchmark, record_figure):
    result = run_once(benchmark, fig11_covert_t, bits=1000)
    record_figure(result)
    # Paper: 99.3% (SCT) and 94.3% (SIT) bit accuracy.
    assert result.row("SCT bit accuracy").measured >= 0.97
    assert result.row("SIT (SGX) bit accuracy").measured >= 0.88
    # The simulated design's cleaner timing beats the noisy SGX machine.
    assert (
        result.row("SCT bit accuracy").measured
        > result.row("SIT (SGX) bit accuracy").measured
    )


def test_fig11_cross_socket_variant(benchmark, record_figure):
    """Section VI-A: the channel also works across sockets."""

    def run():
        proc, allocator = _machine("sct", cores=4, sockets=2)
        channel = CovertChannelT(proc, allocator, trojan_core=0, spy_core=2)
        return channel.transmit(_random_bits(200))

    report = run_once(benchmark, run)
    print(f"\ncross-socket covert accuracy: {report.accuracy:.3f}")
    assert report.accuracy >= 0.97
