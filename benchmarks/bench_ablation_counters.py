"""Ablation A1: VUL-1 overflow scope across counter schemes (Figure 3)."""

from conftest import run_once

from repro.analysis.figures import ablation_counter_schemes


def test_ablation_counter_schemes(benchmark, record_figure):
    result = run_once(benchmark, ablation_counter_schemes)
    record_figure(result)
    sc = result.row("SC re-encrypted blocks").measured
    gc = result.row("GC re-encrypted blocks").measured
    moc = result.row("MoC re-encrypted blocks").measured
    # GC/MoC overflow re-encrypts every written block; SC only the page
    # group of the overflowing counter.
    assert gc == moc
    assert sc < gc
