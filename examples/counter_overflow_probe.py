#!/usr/bin/env python3
"""Observe victim writes through counter overflow (MetaLeak-C, Figure 13).

The attacker shares a 7-bit tree minor counter with a victim page.  It
presets the counter one write short of saturation (mPreset); after the
victim runs, a single attacker bump fires the overflow if — and only if —
the victim wrote (mOverflow).  Overflow is visible purely through timing:
the subtree re-hash burst delays a concurrent memory read by thousands of
cycles (Figure 8's two bands).

Run:  python examples/counter_overflow_probe.py
"""

from repro.attacks import MetaLeakC
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def main() -> None:
    config = SecureProcessorConfig.sct_default(
        protected_size=256 * MIB, functional_crypto=False
    )
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)

    victim_frame = allocator.alloc_specific(3)
    victim_addr = victim_frame * PAGE_SIZE
    attack = MetaLeakC(proc, allocator, core=1)
    handle = attack.handle_for_page(victim_frame, level=1)

    print("mPreset: resetting the shared tree counter ...")
    spent = handle.reset()
    print(f"  overflow observed after {spent} bumps -> counter state known")
    handle.preset(handle.minor_max - 1)
    print(f"  counter preset to {handle.minor_max - 1} (one write short of saturation)")

    print("\nRound 1: victim WRITES its page")
    proc.write_through(victim_addr, b"secret write", core=0)
    proc.drain_writes()
    attack.collect_victim_updates(victim_frame, level=1)
    extra = handle.count_to_overflow()
    print(f"  mOverflow needed {extra} attacker bump(s)")
    print(f"  attacker's observed latency: {handle.last_bump_latency} cycles")
    print(f"  => victim wrote: {extra == 1}")

    handle.preset(handle.minor_max - 1)
    print("\nRound 2: victim stays idle")
    attack.collect_victim_updates(victim_frame, level=1)
    extra = handle.count_to_overflow()
    print(f"  mOverflow needed {extra} attacker bump(s)")
    print(f"  => victim wrote: {extra == 1}")


if __name__ == "__main__":
    main()
