#!/usr/bin/env python3
"""Profile a persistent key-value store's writes with MetaLeak-C.

A PM-style hash table persists every store immediately (the threat model's
persistent-application case).  The attacker shares tree minor counters
with each bucket page and, between victim operations, counts writes via
mPreset+mOverflow — recovering which bucket every secret key hashed to,
without reading a single byte of victim data.

Run:  python examples/kv_store_leak.py
"""

from repro.attacks import MetaLeakC
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator, Process
from repro.proc import SecureProcessor
from repro.sgx.sgx_step import SgxStep
from repro.victims.kvstore import PersistentKvStore

BUCKETS = 4


def main() -> None:
    config = SecureProcessorConfig.sct_default(
        protected_size=256 * MIB, functional_crypto=False
    )
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)

    # Attacker stages the bucket pages into distant leaf groups so each
    # gets its own shared tree counter (log page first, LIFO order).
    frames = [32 * (10 + 40 * i) for i in range(BUCKETS)]
    log_frame = 32 * 200
    for frame in reversed(frames):
        allocator.stage_for_next_alloc(frame, core=0)
    allocator.stage_for_next_alloc(log_frame, core=0)

    victim_process = Process(proc, allocator, core=0, cleanse=True, name="kv")
    store = PersistentKvStore(victim_process, buckets=BUCKETS)
    assert [store.bucket_frame(b) for b in range(BUCKETS)] == frames

    attack = MetaLeakC(proc, allocator, core=1)
    handles = {
        bucket: attack.handle_for_page(store.bucket_frame(bucket), level=1)
        for bucket in range(BUCKETS)
    }
    print("Arming shared tree counters for every bucket page ...")
    for handle in handles.values():
        handle.arm_for_writes(1)

    secret_keys = ["alice", "bob", "carol", "dave", "erin", "frank"]
    observed: dict[str, int | None] = {}

    for key in secret_keys:
        stepper = SgxStep(interval=1)
        stepper.run(store.put(key, b"value-" + key.encode()))
        # Probe every bucket counter: the one the victim wrote overflows
        # after a single attacker bump.
        hit = None
        for bucket, handle in handles.items():
            attack.collect_victim_updates(store.bucket_frame(bucket), level=1)
            extra = handle.count_to_overflow()
            if extra == 1 and hit is None:
                hit = bucket
            handle.preset(handle.minor_max - 1)  # re-arm
        observed[key] = hit

    print(f"{'key':<8} {'true bucket':>12} {'leaked bucket':>14}")
    correct = 0
    for key in secret_keys:
        true_bucket = store.bucket_of(key)
        leaked = observed[key]
        correct += leaked == true_bucket
        print(f"{key:<8} {true_bucket:>12} {str(leaked):>14}")
    print(f"\nrecovered {correct}/{len(secret_keys)} bucket assignments")


if __name__ == "__main__":
    main()
