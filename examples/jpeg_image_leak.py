#!/usr/bin/env python3
"""Steal an image through the integrity tree (Figure 15).

A libjpeg-style encoder compresses an image inside a cache-cleansed
process.  The attacker never reads the image — it only watches, through
shared integrity-tree nodes, whether each loop iteration of
``encode_one_block`` touched the ``r`` page (zero coefficient) or the
``nbits`` page (non-zero), then rebuilds the image from that entropy mask.

Writes PGM files you can open with any image viewer:
  /tmp/metaleak_original.pgm  /tmp/metaleak_stolen.pgm
  /tmp/metaleak_oracle.pgm    /tmp/metaleak_activity.pgm

Run:  python examples/jpeg_image_leak.py [image] [size]
"""

import sys

import numpy as np

from repro.analysis import run_jpeg_metaleak_t
from repro.victims.jpeg import sample_image_names
from repro.victims.jpeg.reconstruct import save_pgm


def main() -> None:
    image_name = sys.argv[1] if len(sys.argv) > 1 else "text"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    if image_name not in sample_image_names():
        raise SystemExit(f"unknown image; options: {sample_image_names()}")

    print(f"Encoding {image_name!r} ({size}x{size}) under attack ...")
    outcome = run_jpeg_metaleak_t(image_name, size=size, noise_reads=2)

    print(f"  victim steps monitored  : {outcome.steps}")
    print(f"  stealing accuracy       : {outcome.stealing_accuracy:.1%}  (paper: 94.3%)")
    print(f"  zero-element recovery   : {outcome.zero_accuracy:.1%}")
    print(f"  detail-map correlation  : {outcome.reconstruction_correlation:.3f}")

    save_pgm(outcome.original, "/tmp/metaleak_original.pgm")
    save_pgm(outcome.reconstructed, "/tmp/metaleak_stolen.pgm")
    save_pgm(outcome.oracle, "/tmp/metaleak_oracle.pgm")
    # Leaked detail map, normalised for viewing.
    diff = np.abs(outcome.reconstructed.astype(float) - 128.0)
    if diff.max() > 0:
        diff = diff * (255.0 / diff.max())
    save_pgm(diff, "/tmp/metaleak_activity.pgm")
    print("  wrote /tmp/metaleak_{original,stolen,oracle,activity}.pgm")


if __name__ == "__main__":
    main()
