#!/usr/bin/env python3
"""Quickstart: drive the simulated secure processor directly.

Shows the three things everything else builds on:
  1. the Figure-5 access paths and their distinguishable latencies (VUL-2),
  2. encrypted write/read round-trips through the metadata machinery,
  3. functional integrity: off-chip tampering is detected.

Run:  python examples/quickstart.py
"""

from repro.config import MIB, SecureProcessorConfig
from repro.proc import SecureProcessor
from repro.secmem.engine import IntegrityViolation


def main() -> None:
    config = SecureProcessorConfig.sct_default(protected_size=128 * MIB)
    proc = SecureProcessor(config)
    print("Machine:", config.name, "| integrity tree:", config.tree.kind.value)
    print(proc.layout.describe())
    print()

    # --- 1. Access paths -------------------------------------------------
    addr = 0x40000
    print("Access paths for one data block (Figure 5):")
    result = proc.read(addr)
    print(f"  cold read : {result.path.value:<45} {result.latency:>5} cycles")
    result = proc.read(addr)
    print(f"  warm read : {result.path.value:<45} {result.latency:>5} cycles")
    proc.flush(addr)
    result = proc.read(addr)
    print(f"  flushed   : {result.path.value:<45} {result.latency:>5} cycles")
    proc.flush(addr)
    proc.metadata_cache.invalidate(proc.layout.counter_block_addr(addr))
    result = proc.read(addr)
    print(f"  ctr miss  : {result.path.value:<45} {result.latency:>5} cycles")
    print()

    # --- 2. Encrypted round-trip -----------------------------------------
    proc.write_through(0x80000, b"attack at dawn")
    proc.drain_writes()
    proc.mee.flush_metadata_cache(proc.cycle)
    proc.flush(0x80000)
    data = proc.read(0x80000).data
    print("Round-trip through encrypted memory:", data[:14])
    ciphertext = proc.mee.snapshot_block(0x80000)[0]
    print("Ciphertext actually stored off-chip :", ciphertext[:14].hex())
    print()

    # --- 3. Tamper detection ---------------------------------------------
    snapshot = proc.mee.snapshot_block(0x80000)
    proc.write_through(0x80000, b"attack at dusk")
    proc.drain_writes()
    proc.flush(0x80000)
    proc.mee.tamper_replay(0x80000, snapshot)  # replay the old ciphertext
    try:
        proc.read(0x80000)
        print("!! replay went undetected (this should not happen)")
    except IntegrityViolation as violation:
        print("Replay attack detected:", violation)


if __name__ == "__main__":
    main()
