#!/usr/bin/env python3
"""Evaluate the defenses the paper discusses (Section IX).

Runs the same MetaLeak-T covert transmission under four configurations
and shows which ones actually stop it:

  1. baseline SCT machine                          -> channel works
  2. physically disjoint LLCs (2 sockets)          -> channel works
     (stronger than any way-partitioning proposal)
  3. MIRAGE-style randomized cache                 -> eviction still
     possible with enough arbitrary accesses (Figure 18)
  4. per-domain isolated integrity trees (IX-C)    -> channel collapses

Run:  python examples/defense_evaluation.py
"""

from repro.attacks import CovertChannelT
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.defenses import (
    isolated_tree_config,
    mirage_eviction_curve,
    partitioned_llc_config,
)
from repro.os import PageAllocator
from repro.proc import SecureProcessor

BITS = [1, 0, 1, 1, 0, 0, 1, 0] * 5


def covert_accuracy(proc, allocator, **channel_kwargs) -> float:
    channel = CovertChannelT(proc, allocator, **channel_kwargs)
    return channel.transmit(BITS).accuracy


def main() -> None:
    print(f"Transmitting {len(BITS)} bits through the metadata channel\n")

    config = SecureProcessorConfig.sct_default(
        protected_size=256 * MIB, functional_crypto=False
    )
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    print(f"1. baseline SCT               : {covert_accuracy(proc, allocator):.1%}")

    config = partitioned_llc_config(protected_size=256 * MIB)
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    acc = covert_accuracy(proc, allocator, trojan_core=0, spy_core=2)
    print(f"2. disjoint LLCs (2 sockets)  : {acc:.1%}   <- partitioning "
          "data caches does not help")

    points = mirage_eviction_curve((3000, 7000, 12000), trials=12)
    curve = ", ".join(f"{p.accesses}:{p.accuracy:.0%}" for p in points)
    print(f"3. MIRAGE randomized cache    : target evicted anyway "
          f"({curve} random accesses)")

    config = isolated_tree_config(protected_size=256 * MIB)
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    channel = CovertChannelT(proc, allocator)
    # The trojan's pages belong to another security domain.
    proc.mee.set_page_domain(channel._trojan_tx, 1)
    proc.mee.set_page_domain(channel._trojan_bd, 1)
    accuracy = channel.transmit(BITS).accuracy
    print(f"4. per-domain isolated trees  : {accuracy:.1%}   <- chance: "
          "the IX-C mitigation closes the channel")


if __name__ == "__main__":
    main()
