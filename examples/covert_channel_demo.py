#!/usr/bin/env python3
"""Covert channels through security metadata (Figures 11 and 14).

A trojan and a spy — two processes with *no shared data* — communicate:
  * MetaLeak-T: bits through the caching state of shared integrity-tree
    node blocks (mEvict+mReload);
  * MetaLeak-C: 7-bit symbols through the value of a shared tree minor
    counter (mPreset+mOverflow).

Run:  python examples/covert_channel_demo.py
"""

from repro.attacks import CovertChannelC, CovertChannelT
from repro.config import MIB, SecureProcessorConfig
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def build_machine():
    config = SecureProcessorConfig.sct_default(
        protected_size=256 * MIB, functional_crypto=False, timer_jitter_sigma=11
    )
    proc = SecureProcessor(config)
    return proc, PageAllocator(proc.layout.data_size // 4096, cores=4)


def main() -> None:
    message = "META"
    bits = [int(b) for char in message for b in format(ord(char), "08b")]

    proc, allocator = build_machine()
    channel = CovertChannelT(proc, allocator)
    report = channel.transmit(bits)
    received = "".join(
        chr(int("".join(map(str, report.received[i : i + 8])), 2))
        for i in range(0, len(report.received), 8)
    )
    print("MetaLeak-T covert channel")
    print(f"  sent     : {message!r} ({len(bits)} bits)")
    print(f"  received : {received!r}")
    print(f"  accuracy : {report.accuracy:.1%}")
    print(f"  rate     : {report.bits_per_kilocycle():.4f} bits/kcycle")
    print(f"  reload latencies (first 8 bits): {report.latencies[:8]}")
    print()

    proc, allocator = build_machine()
    channel_c = CovertChannelC(proc, allocator)
    symbols = [ord(c) for c in message]  # ASCII fits in 7 bits
    report_c = channel_c.transmit(symbols)
    print("MetaLeak-C covert channel")
    print(f"  sent     : {symbols}")
    print(f"  received : {report_c.received}")
    print(f"  decoded  : {''.join(chr(s) for s in report_c.received)!r}")
    print(f"  accuracy : {report_c.accuracy:.1%}")


if __name__ == "__main__":
    main()
