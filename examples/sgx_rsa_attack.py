#!/usr/bin/env python3
"""Exfiltrate an RSA exponent from an SGX enclave (Figure 16).

The victim runs libgcrypt-style square-and-multiply inside an enclave.
The malicious OS places the two routine pages in chosen EPC frames, puts
attacker pages in the same SIT L1 groups, single-steps the enclave
(SGX-Step) and mEvict+mReloads the shared tree nodes at every step.

Run:  python examples/sgx_rsa_attack.py [bits]
"""

import sys

from repro.analysis import run_rsa_attack
from repro.config import MIB, SecureProcessorConfig


def bits_to_str(bits, limit=48):
    text = "".join(map(str, bits[:limit]))
    return text + ("..." if len(bits) > limit else "")


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    config = SecureProcessorConfig.sgx_default(
        epc_size=64 * MIB, functional_crypto=False, timer_jitter_sigma=88
    )
    print(f"Recovering a {bits}-bit exponent from an SGX enclave ...")
    outcome = run_rsa_attack("sgx", exponent_bits=bits, config=config)
    print(f"  victim operations stepped : {outcome.steps}")
    print(f"  true exponent bits        : {bits_to_str(outcome.true_bits)}")
    print(f"  recovered bits            : {bits_to_str(outcome.recovered_bits)}")
    print(f"  per-op detection accuracy : {outcome.op_accuracy:.1%}")
    print(f"  exponent bit accuracy     : {outcome.bit_accuracy:.1%}  (paper: 91.2%)")
    square, multiply = outcome.latency_trace[0]
    print(f"  sample reload latencies   : square-page={square}, multiply-page={multiply}")

    print("\nSame attack on the simulated academic design (SCT):")
    sct_config = SecureProcessorConfig.sct_default(
        protected_size=256 * MIB, functional_crypto=False, timer_jitter_sigma=11
    )
    sct = run_rsa_attack("sct", exponent_bits=bits, config=sct_config)
    print(f"  exponent bit accuracy     : {sct.bit_accuracy:.1%}  (paper: 95.1%)")


if __name__ == "__main__":
    main()
