#!/usr/bin/env python3
"""Find a metadata eviction set blind — no layout knowledge.

The framework usually computes metadata addresses analytically.  Real
attackers on undocumented layouts cannot; they *search*: allocate a big
buffer, confirm the whole pool evicts the target's tree leaf (sensed via
reload timing), then group-test the pool down to a minimal set.

Run:  python examples/eviction_set_search.py
"""

import time

from repro.attacks.search import EvictionSetSearch
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def main() -> None:
    config = SecureProcessorConfig.sct_default(
        protected_size=128 * MIB, functional_crypto=False
    )
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)

    target_frame = allocator.alloc_specific(1000)
    target = target_frame * PAGE_SIZE
    pool = [allocator.alloc_specific(frame) for frame in range(2000, 7000)]
    print(f"target page      : frame {target_frame}")
    print(f"candidate pool   : {len(pool)} pages ({len(pool) * 4 // 1024} MiB)")

    search = EvictionSetSearch(proc, allocator, target_block=target, core=1)
    print(f"self-calibrated threshold: {search.threshold:.0f} cycles")

    started = time.time()
    minimal = search.find_minimal_set(pool)
    elapsed = time.time() - started
    print(f"\nminimal eviction set: {len(minimal)} pages "
          f"(metadata cache is {proc.config.metadata_cache.ways}-way)")
    print(f"  frames   : {minimal}")
    print(f"  searched with {search.stats.tests} timing tests, "
          f"{search.stats.accesses} accesses, {elapsed:.1f}s wall")
    print(f"  reliability over 5 trials: {search.verify(minimal):.0%}")

    # Ground truth (simulator-only): every found page must alias the
    # target leaf's metadata-cache set.
    leaf = proc.layout.node_addr_for_data(target, 0)
    target_set = proc.metadata_cache.set_index_of(leaf)
    aliasing = sum(
        any(
            proc.metadata_cache.set_index_of(meta) == target_set
            for meta in [proc.layout.counter_block_addr(frame * PAGE_SIZE)]
            + [
                proc.layout.node_addr_for_data(frame * PAGE_SIZE, level)
                for level in range(len(proc.layout.levels))
            ]
        )
        for frame in minimal
    )
    print(f"  ground truth: {aliasing}/{len(minimal)} pages genuinely alias "
          f"metadata set {target_set}")


if __name__ == "__main__":
    main()
